package core

import (
	"testing"
	"testing/quick"
)

func TestTagSourceMonotone(t *testing.T) {
	var s TagSource
	prev := Tag(0)
	for i := 0; i < 1000; i++ {
		tag := s.Next()
		if tag <= prev {
			t.Fatalf("tag %d not greater than %d", tag, prev)
		}
		prev = tag
	}
	if s.Last() != prev {
		t.Errorf("Last() = %d, want %d", s.Last(), prev)
	}
}

func TestSlotFirstDelivery(t *testing.T) {
	var s OperandSlot
	if !s.Deliver(42, 0, true) {
		t.Error("first delivery must trigger execution")
	}
	if !s.Present || s.Value != 42 || s.Tag != 0 || s.Committed {
		t.Errorf("slot = %+v", s)
	}
}

func TestSlotNewerTagWins(t *testing.T) {
	var s OperandSlot
	s.Deliver(1, 0, false)
	if !s.Deliver(2, 5, false) {
		t.Error("newer tag with new value must re-execute")
	}
	if s.Value != 2 || s.Tag != 5 {
		t.Errorf("slot = %+v", s)
	}
	// Stale wave arrives late: dropped.
	if s.Deliver(9, 3, false) {
		t.Error("stale tag must not re-execute")
	}
	if s.Value != 2 || s.Tag != 5 {
		t.Errorf("stale delivery modified slot: %+v", s)
	}
}

func TestSlotEqualTagDifferentValue(t *testing.T) {
	// The same producer re-fires with an unchanged max input tag but a new
	// value (a lower-tagged operand changed); FIFO links deliver the later
	// message later, so it must win.
	var s OperandSlot
	s.Deliver(1, 7, false)
	if !s.Deliver(3, 7, false) {
		t.Error("equal tag, different value must re-execute")
	}
	if s.Value != 3 {
		t.Errorf("slot = %+v", s)
	}
	// Equal tag, same value: idempotent duplicate, dropped.
	if s.Deliver(3, 7, false) {
		t.Error("duplicate must not re-execute")
	}
}

func TestSlotIdenticalValueSuppression(t *testing.T) {
	var s OperandSlot
	s.Deliver(5, 1, true)
	// Newer wave recomputed the same value: suppression stops the wave
	// but the tag still advances.
	if s.Deliver(5, 4, true) {
		t.Error("suppression enabled: identical value must not re-execute")
	}
	if s.Tag != 4 {
		t.Errorf("tag = %d, want 4", s.Tag)
	}
	// With suppression disabled the same delivery re-executes.
	var u OperandSlot
	u.Deliver(5, 1, false)
	if !u.Deliver(5, 4, false) {
		t.Error("suppression disabled: newer tag must re-execute")
	}
}

func TestSlotCommit(t *testing.T) {
	var s OperandSlot
	s.Deliver(10, 2, true)
	// Commit token confirming the held value: no re-execution.
	if s.DeliverCommit(10) {
		t.Error("matching commit must not re-execute")
	}
	if !s.Committed {
		t.Error("slot must be committed")
	}
	// All later data is ignored.
	if s.Deliver(99, 100, false) {
		t.Error("committed slot must ignore data")
	}
	if s.Value != 10 {
		t.Errorf("committed value changed: %+v", s)
	}
}

func TestSlotCommitCorrectsStaleValue(t *testing.T) {
	// The commit token can overtake the final data message (different
	// network path); it must act as data and trigger re-execution.
	var s OperandSlot
	s.Deliver(1, 0, true)
	if !s.DeliverCommit(7) {
		t.Error("commit with new value must re-execute")
	}
	if s.Value != 7 || !s.Committed {
		t.Errorf("slot = %+v", s)
	}
}

func TestSlotCommitOnEmpty(t *testing.T) {
	var s OperandSlot
	if !s.DeliverCommit(7) {
		t.Error("commit into empty slot must install and re-execute")
	}
	if !s.Present || s.Value != 7 {
		t.Errorf("slot = %+v", s)
	}
	if s.DeliverCommit(7) {
		t.Error("second commit must be idempotent")
	}
}

// TestSlotConvergence property: however a sequence of deliveries is
// interleaved, once the delivery carrying the maximum tag has arrived, the
// slot holds that delivery's value (with ties broken by arrival order,
// which the property constructs to be consistent).
func TestSlotConvergence(t *testing.T) {
	f := func(tags []uint8) bool {
		var s OperandSlot
		var maxTag Tag
		var maxVal int64
		for i, raw := range tags {
			tag := Tag(raw)
			val := int64(i) // distinct value per delivery
			s.Deliver(val, tag, false)
			if tag >= maxTag {
				// Equal tags: the later delivery wins (FIFO rule).
				maxTag, maxVal = tag, val
			}
		}
		if len(tags) == 0 {
			return !s.Present
		}
		return s.Present && s.Tag == maxTag && s.Value == maxVal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSlotCommitIsFinal property: after a commit, no data delivery changes
// the slot.
func TestSlotCommitIsFinal(t *testing.T) {
	f := func(final int64, later []int64) bool {
		var s OperandSlot
		s.DeliverCommit(final)
		for i, v := range later {
			if s.Deliver(v, Tag(i+1000), false) {
				return false
			}
		}
		return s.Value == final && s.Committed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWaveStats(t *testing.T) {
	w := NewWaveStats()
	w.WaveStarted(1)
	w.WaveStarted(2)
	w.Reexecuted(1)
	w.Reexecuted(1)
	w.Reexecuted(2)
	if w.Waves != 2 || w.Reexecs != 3 {
		t.Errorf("waves=%d reexecs=%d", w.Waves, w.Reexecs)
	}
	if got := w.MeanSize(); got != 1.5 {
		t.Errorf("mean = %v, want 1.5", got)
	}
	h := w.SizeHist()
	if h.N != 2 || h.Max != 2 {
		t.Errorf("hist = %v", h)
	}
	// A wave that repaired its violation without any downstream re-fires
	// still appears (size zero).
	w2 := NewWaveStats()
	w2.WaveStarted(9)
	if h2 := w2.SizeHist(); h2.N != 1 || h2.Max != 0 {
		t.Errorf("zero-size wave hist = %v", h2)
	}
}

func TestSchemeStrings(t *testing.T) {
	if RecoverFlush.String() != "flush" || RecoverDSRE.String() != "dsre" {
		t.Error("recovery scheme names")
	}
	names := map[IssuePolicy]string{
		IssueConservative: "conservative",
		IssueAggressive:   "aggressive",
		IssueStoreSet:     "storeset",
		IssueOracle:       "oracle",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

// BenchmarkSlotDeliver measures the per-operand wake-up check, the hottest
// protocol operation.
func BenchmarkSlotDeliver(b *testing.B) {
	var s OperandSlot
	for i := 0; i < b.N; i++ {
		s.Deliver(int64(i), Tag(i), true)
	}
}

// BenchmarkWaveAccounting measures re-execution attribution.
func BenchmarkWaveAccounting(b *testing.B) {
	w := NewWaveStats()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			w.WaveStarted(Tag(i))
		}
		w.Reexecuted(Tag(i &^ 7))
	}
}
