// Package cache provides the timing model for the memory hierarchy: set-
// associative L1 instruction/data caches backed by a unified L2 and a flat
// DRAM latency, with a bounded number of outstanding misses (MSHRs).
//
// The model is timing-only: data values always come from internal/mem and
// the load/store queue, so speculative timing can never corrupt state.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes  int
	Assoc      int
	LineBytes  int
	HitLatency int
}

// Stats counts cache events.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// MissRate returns misses / accesses.
func (s *Stats) MissRate() float64 {
	n := s.Hits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Misses) / float64(n)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   int64
}

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	cfg   Config
	sets  [][]line
	shift uint
	mask  uint64
	tick  int64
	Stats Stats
}

// New builds a cache from its configuration.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d is not a power of two", cfg.LineBytes)
	}
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: associativity %d", cfg.Assoc)
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	if nLines <= 0 || nLines%cfg.Assoc != 0 {
		return nil, fmt.Errorf("cache: %d bytes / %dB lines not divisible into %d ways", cfg.SizeBytes, cfg.LineBytes, cfg.Assoc)
	}
	nSets := nLines / cfg.Assoc
	if nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", nSets)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nSets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c.shift = shift
	c.mask = uint64(nSets - 1)
	return c, nil
}

// MustNew is New that panics on error, for configuration literals.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit         bool
	VictimDirty bool // an eviction wrote back a dirty line
}

// Access looks up (and on miss, fills) the line containing addr.
// write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.tick++
	set := c.sets[(addr>>c.shift)&c.mask]
	tag := addr >> c.shift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.Stats.Misses++
	// Fill, evicting LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if set[victim].valid {
		c.Stats.Evictions++
		if set[victim].dirty {
			c.Stats.Writebacks++
			res.VictimDirty = true
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// Probe reports whether addr currently hits, without changing state.
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[(addr>>c.shift)&c.mask]
	tag := addr >> c.shift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }

// HierConfig describes the full hierarchy.
type HierConfig struct {
	L1D Config
	L1I Config
	L2  Config
	// MemLatency is the flat DRAM access latency in cycles.
	MemLatency int
	// WritebackPenalty is added when a miss evicts a dirty line.
	WritebackPenalty int
	// MSHRs bounds concurrently outstanding misses per L1; zero means 16.
	MSHRs int
}

// DefaultHierConfig mirrors the TRIPS-era configuration in the paper's
// machine table: 32KB 2-way L1s with 2-cycle hits, 1MB 16-way L2 at 12
// cycles, ~100-cycle DRAM.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1D:              Config{SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, HitLatency: 2},
		L1I:              Config{SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, HitLatency: 1},
		L2:               Config{SizeBytes: 1 << 20, Assoc: 16, LineBytes: 64, HitLatency: 12},
		MemLatency:       100,
		WritebackPenalty: 4,
		MSHRs:            16,
	}
}

// Hierarchy ties the levels together and tracks MSHR occupancy.
type Hierarchy struct {
	L1D *Cache
	L1I *Cache
	L2  *Cache
	cfg HierConfig

	// Outstanding data-side miss completion times, pruned lazily.
	inflight []int64
	// MSHRStalls counts accesses rejected because all MSHRs were busy.
	MSHRStalls int64
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if cfg.MSHRs == 0 {
		cfg.MSHRs = 16
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{L1D: l1d, L1I: l1i, L2: l2, cfg: cfg}, nil
}

func (h *Hierarchy) prune(now int64) {
	kept := h.inflight[:0]
	for _, t := range h.inflight {
		if t > now {
			kept = append(kept, t)
		}
	}
	h.inflight = kept
}

// OutstandingData reports how many data-side misses are still in flight at
// cycle now (current MSHR occupancy), for cycle-accounting attribution.
func (h *Hierarchy) OutstandingData(now int64) int {
	h.prune(now)
	return len(h.inflight)
}

// DataAccess returns the latency of a data-side access at cycle now, or
// ok=false when all MSHRs are busy and the access must retry.
func (h *Hierarchy) DataAccess(now int64, addr uint64, write bool) (lat int, ok bool) {
	r1 := h.L1D.Access(addr, write)
	lat = h.L1D.HitLatency()
	if r1.Hit {
		return lat, true
	}
	h.prune(now)
	if len(h.inflight) >= h.cfg.MSHRs {
		h.MSHRStalls++
		return 0, false
	}
	r2 := h.L2.Access(addr, false)
	lat += h.L2.HitLatency()
	if !r2.Hit {
		lat += h.cfg.MemLatency
	}
	if r1.VictimDirty || r2.VictimDirty {
		lat += h.cfg.WritebackPenalty
	}
	h.inflight = append(h.inflight, now+int64(lat))
	return lat, true
}

// InstAccess returns the latency of an instruction-side access (block
// fetch); instruction fetch is not MSHR-limited in this model.
func (h *Hierarchy) InstAccess(addr uint64) int {
	r1 := h.L1I.Access(addr, false)
	latency := h.L1I.HitLatency()
	if r1.Hit {
		return latency
	}
	r2 := h.L2.Access(addr, false)
	latency += h.L2.HitLatency()
	if !r2.Hit {
		latency += h.cfg.MemLatency
	}
	return latency
}
