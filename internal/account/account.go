// Package account implements per-cycle cycle accounting (CPI stacks) and
// mis-speculation forensics for the simulator.  The machine attributes each
// cycle's commit-slot budget to exactly one cause bucket; the resulting
// stack obeys a hard conservation invariant (sum of buckets == cycles ×
// slots) that the sim checks under the dsre_assert build tag.  The package
// is substrate-level: it may be imported by internal/sim but never imports
// it.
package account

import (
	"fmt"
	"strings"
)

// SlotsPerCycle is the machine's commit-slot budget per cycle.  The modeled
// machine commits at most one block per cycle, so the budget is one slot;
// the constant keeps the conservation arithmetic honest if that changes.
const SlotsPerCycle = 1

// Bucket is one cause a cycle's commit slot can be charged to.  Every cycle
// is charged to exactly one bucket, in the documented priority order (see
// DESIGN.md "Cycle accounting"): Commit > Wave > BPred > Fetch > Drain >
// CacheMiss > Issue > NoC.
type Bucket uint8

const (
	// BucketCommit: a block committed this cycle — the slot did useful work.
	BucketCommit Bucket = iota
	// BucketWave: the slot was lost to an LSQ violation repair — a flush,
	// a DSRE re-execution wave, a value-prediction correction, or the
	// fetch-starved shadow of a violation flush.
	BucketWave
	// BucketBPred: the slot was lost to a block-predictor squash or the
	// fetch-starved shadow of one.
	BucketBPred
	// BucketFetch: the window was empty and fetch had not yet delivered a
	// block (i-cache latency, frame-pressure or LSQ-pressure stalls).
	BucketFetch
	// BucketDrain: fetch has reached the halt target and the window is
	// winding down toward the final commit.
	BucketDrain
	// BucketCacheMiss: progress was blocked with data-cache misses
	// outstanding.
	BucketCacheMiss
	// BucketIssue: instructions were ready or executing but the oldest
	// block could not complete — issue-bandwidth or ALU-latency bound.
	BucketIssue
	// BucketNoC: nothing was ready anywhere; progress waits on operand or
	// protocol messages in the mesh.
	BucketNoC

	// NumBuckets is the sentinel bound, not a member.
	NumBuckets
)

func (b Bucket) String() string {
	switch b {
	case BucketCommit:
		return "commit"
	case BucketWave:
		return "wave"
	case BucketBPred:
		return "bpred"
	case BucketFetch:
		return "fetch"
	case BucketDrain:
		return "drain"
	case BucketCacheMiss:
		return "cachemiss"
	case BucketIssue:
		return "issue"
	case BucketNoC:
		return "noc"
	}
	return fmt.Sprintf("bucket(%d)", uint8(b))
}

// CPIStack is the per-bucket slot tally.  Fields are commit-slot counts
// (cycles × SlotsPerCycle), so with SlotsPerCycle == 1 each field reads as
// a cycle count and Total() must equal the accounted cycle span.
type CPIStack struct {
	Commit    int64 `json:"commit"`
	Wave      int64 `json:"wave"`
	BPred     int64 `json:"bpred"`
	Fetch     int64 `json:"fetch"`
	Drain     int64 `json:"drain"`
	CacheMiss int64 `json:"cache_miss"`
	Issue     int64 `json:"issue"`
	NoC       int64 `json:"noc"`
}

// Add charges n slots to bucket b.
func (c *CPIStack) Add(b Bucket, n int64) {
	switch b {
	case BucketCommit:
		c.Commit += n
	case BucketWave:
		c.Wave += n
	case BucketBPred:
		c.BPred += n
	case BucketFetch:
		c.Fetch += n
	case BucketDrain:
		c.Drain += n
	case BucketCacheMiss:
		c.CacheMiss += n
	case BucketIssue:
		c.Issue += n
	case BucketNoC:
		c.NoC += n
	}
}

// Get returns the slots charged to bucket b.
func (c CPIStack) Get(b Bucket) int64 {
	switch b {
	case BucketCommit:
		return c.Commit
	case BucketWave:
		return c.Wave
	case BucketBPred:
		return c.BPred
	case BucketFetch:
		return c.Fetch
	case BucketDrain:
		return c.Drain
	case BucketCacheMiss:
		return c.CacheMiss
	case BucketIssue:
		return c.Issue
	case BucketNoC:
		return c.NoC
	}
	return 0
}

// Total is the sum over all buckets; conservation requires it to equal the
// accounted cycle span × SlotsPerCycle.
func (c CPIStack) Total() int64 {
	var t int64
	for b := Bucket(0); b < NumBuckets; b++ {
		t += c.Get(b)
	}
	return t
}

// Sub returns the windowed delta c - prev (both cumulative snapshots).
func (c CPIStack) Sub(prev CPIStack) CPIStack {
	var d CPIStack
	for b := Bucket(0); b < NumBuckets; b++ {
		d.Add(b, c.Get(b)-prev.Get(b))
	}
	return d
}

// String renders the non-zero buckets in priority order with their share of
// the total, e.g. "commit=120 (60.0%) wave=50 (25.0%) fetch=30 (15.0%)".
func (c CPIStack) String() string {
	total := c.Total()
	if total == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	for b := Bucket(0); b < NumBuckets; b++ {
		v := c.Get(b)
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d (%.1f%%)", b, v, 100*float64(v)/float64(total))
	}
	return sb.String()
}
