package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// clock hands out deterministic, strictly advancing instants so lifecycle
// tests control every timestamp the observer sees.
type clock struct{ t time.Time }

func newClock() *clock {
	return &clock{t: time.Unix(1_700_000_000, 0)}
}

func (c *clock) now() time.Time { return c.t }

func (c *clock) advance(d time.Duration) time.Time {
	c.t = c.t.Add(d)
	return c.t
}

// TestSweepObsLifecycle drives one grid through a mixed outcome set and
// checks counters, events, spans, and the final progress view all agree.
func TestSweepObsLifecycle(t *testing.T) {
	var log bytes.Buffer
	sink := NewJSONLSink(&log)
	spans := NewSpanLog()
	c := newClock()
	o := NewSweepObs(c.now(), sink, spans)

	// 4 specs, 3 unique (one pair dedups), 2 workers.
	g := o.GridBegin(4, 3, 2, c.now())

	// Job A: computed OK, covers 2 dedup copies -> 1 cache hit.
	a := g.StartJob(0, "job-a", "ha", 2, c.advance(time.Millisecond))
	a.Mark(PhaseCacheLookup, c.advance(time.Millisecond))
	a.Mark(PhasePrepare, c.advance(2*time.Millisecond))
	a.Mark(PhaseRun, c.advance(10*time.Millisecond))
	a.StoreWrite(true, c.advance(time.Millisecond))
	a.Done("ok", false, 1, 15, c.now())

	// Job B: store replay -> its single copy is a cache hit.
	b := g.StartJob(1, "job-b", "hb", 1, c.advance(time.Millisecond))
	b.Mark(PhaseCacheLookup, c.advance(time.Millisecond))
	b.Done("ok", true, 0, 2, c.now())

	// Job C: one retry, one panic, then fails for good.
	j := g.StartJob(0, "job-c", "hc", 1, c.advance(time.Millisecond))
	j.Mark(PhaseCacheLookup, c.advance(time.Millisecond))
	j.Retry(1, errors.New("flaky\nstack"), c.advance(3*time.Millisecond))
	j.Panic(2, errors.New("panic: boom\nstack"), c.advance(3*time.Millisecond))
	j.Mark(PhaseRun, c.now())
	j.Done("failed", false, 2, 8, c.now())

	g.Drain(errors.New("context canceled"), c.advance(time.Millisecond))
	g.End(3, 1, 2, c.advance(time.Millisecond))

	s := o.Reg.Snapshot()
	for name, want := range map[string]int64{
		"dsre_sweep_jobs_total":         4,
		"dsre_sweep_jobs_ok_total":      3,
		"dsre_sweep_jobs_failed_total":  1,
		"dsre_sweep_cache_hits_total":   2,
		"dsre_sweep_retries_total":      1,
		"dsre_sweep_panics_total":       1,
		"dsre_sweep_store_writes_total": 1,
		"dsre_sweep_drains_total":       1,
		"dsre_sweep_grids_total":        1,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for name, want := range map[string]int64{
		"dsre_sweep_jobs_queued":  0,
		"dsre_sweep_jobs_running": 0,
		"dsre_sweep_workers_busy": 0,
		"dsre_sweep_workers":      2,
	} {
		if got := s.Gauge(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	events, err := ReadEvents(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	counts := map[EventKind]int{}
	hitCopies := 0
	for _, e := range events {
		counts[e.Kind]++
		if e.Kind == EventCacheHit {
			hitCopies += e.Copies
		}
		if e.Kind == EventRetry && strings.Contains(e.Error, "\n") {
			t.Errorf("retry error not trimmed to first line: %q", e.Error)
		}
	}
	wantCounts := map[EventKind]int{
		EventSweepStart: 1, EventJobStart: 3, EventJobDone: 3, EventCacheHit: 2,
		EventRetry: 1, EventPanic: 1, EventStoreWrite: 1, EventDrain: 1, EventSweepDone: 1,
	}
	for k, want := range wantCounts {
		if counts[k] != want {
			t.Errorf("%s events = %d, want %d", k, counts[k], want)
		}
	}
	// Σ cache_hit copies must equal the manifest's Totals.CacheHits — the
	// reconciliation the obs-smoke CI job pins end to end.
	if hitCopies != 2 {
		t.Errorf("cache_hit copies sum = %d, want 2", hitCopies)
	}

	jobs := spans.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("span log holds %d jobs, want 3", len(jobs))
	}
	for _, js := range jobs {
		if len(js.Phases) == 0 {
			t.Fatalf("job %s has no phases", js.Name)
		}
		if js.Phases[0].Phase != PhaseQueueWait {
			t.Errorf("job %s first phase = %v, want queue-wait", js.Name, js.Phases[0].Phase)
		}
		for i := 1; i < len(js.Phases); i++ {
			if js.Phases[i].StartNS != js.Phases[i-1].EndNS {
				t.Errorf("job %s phase %d starts at %d, previous ended at %d (chain must be contiguous)",
					js.Name, i, js.Phases[i].StartNS, js.Phases[i-1].EndNS)
			}
		}
	}

	v := o.Progress(c.now())
	if v.Schema != ProgressSchema {
		t.Errorf("progress schema = %q", v.Schema)
	}
	if len(v.Workers) != 2 || len(v.Grids) != 1 {
		t.Fatalf("progress = %d workers / %d grids, want 2 / 1", len(v.Workers), len(v.Grids))
	}
	gv := v.Grids[0]
	if !gv.Finished || gv.Done != 4 || gv.Cached != 2 || gv.Failed != 1 || gv.Queued != 0 {
		t.Errorf("grid view = %+v", gv)
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("progress view not marshalable: %v", err)
	}
}

// TestSweepObsNilSinkAndSpans pins that a metrics-only observer works with
// both optional surfaces disabled.
func TestSweepObsNilSinkAndSpans(t *testing.T) {
	c := newClock()
	o := NewSweepObs(c.now(), nil, nil)
	g := o.GridBegin(1, 1, 1, c.now())
	j := g.StartJob(0, "job", "h", 1, c.advance(time.Millisecond))
	j.Mark(PhaseRun, c.advance(time.Millisecond))
	j.Done("ok", false, 1, 1, c.now())
	g.End(1, 0, 0, c.now())
	if got := o.Reg.Snapshot().Counter("dsre_sweep_jobs_ok_total"); got != 1 {
		t.Errorf("ok counter = %d, want 1", got)
	}
}

// TestProgressEta pins that the ETA comes from the rolling window rate, not
// a cumulative average: after 4 completions 1s apart, 10 remaining jobs
// extrapolate to ~10s.
func TestProgressEta(t *testing.T) {
	c := newClock()
	o := NewSweepObs(c.now(), nil, nil)
	g := o.GridBegin(14, 14, 1, c.now())
	for i := 0; i < 4; i++ {
		j := g.StartJob(0, "job", "h", 1, c.advance(time.Second))
		j.Done("ok", false, 1, 1000, c.now())
	}
	v := o.Progress(c.now())
	if v.RatePerSec < 0.9 || v.RatePerSec > 1.1 {
		t.Fatalf("rate = %v, want ~1/s", v.RatePerSec)
	}
	eta := v.Grids[0].EtaMS
	if eta < 9_000 || eta > 11_000 {
		t.Errorf("eta = %dms, want ~10000ms for 10 remaining at 1/s", eta)
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(4)
	base := time.Unix(1_700_000_000, 0)
	if _, ok := w.Rate(base); ok {
		t.Fatal("empty window reported a rate")
	}
	// 6 completions 1s apart through a capacity-4 window: rate stays 1/s
	// because old samples fall out.
	for i := 0; i < 6; i++ {
		w.Observe(base.Add(time.Duration(i) * time.Second))
	}
	if w.Len() != 4 {
		t.Fatalf("window len = %d, want 4", w.Len())
	}
	rate, ok := w.Rate(base.Add(5 * time.Second))
	if !ok || rate < 0.9 || rate > 1.1 {
		t.Errorf("rate = %v/%v, want ~1/s", rate, ok)
	}
	// A stall decays the estimate: same window observed 10s later.
	stalled, ok := w.Rate(base.Add(15 * time.Second))
	if !ok || stalled >= rate {
		t.Errorf("stalled rate = %v, want below %v", stalled, rate)
	}
}

// TestSpanLogChromeTrace renders a small log and checks the catapult JSON
// shape: metadata lanes plus one enclosing job span and nested phases.
func TestSpanLogChromeTrace(t *testing.T) {
	l := NewSpanLog()
	l.Add(JobSpans{
		Name: "job-a", Hash: "ha", Grid: "grid-1", Worker: 1, Status: "ok",
		Phases: []PhaseSpan{
			{Phase: PhaseQueueWait, StartNS: 0, EndNS: 1_000_000},
			{Phase: PhaseRun, StartNS: 1_000_000, EndNS: 5_000_000},
		},
	})
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	found := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		found[ev.Ph+":"+ev.Name] = true
		if ev.Ph == "X" && ev.Name == "run" && ev.Dur != 4000 {
			t.Errorf("run span dur = %dus, want 4000", ev.Dur)
		}
	}
	for _, want := range []string{"M:process_name", "M:thread_name", "X:job-a", "X:queue-wait", "X:run"} {
		if !found[want] {
			t.Errorf("trace missing %s (have %v)", want, found)
		}
	}
}
