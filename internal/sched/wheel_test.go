package sched

import (
	"math/rand"
	"testing"
)

// TestWheelMatchesQueue pins the Wheel to the Queue's exact contract: pops
// come out in (At, insertion order), under interleaved pushes and pops with
// cycle gaps large enough to force ring growth.
func TestWheelMatchesQueue(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var q Queue[int]
	var w Wheel[int]
	now := int64(0)
	for step := 0; step < 20000; step++ {
		switch {
		case q.Len() == 0 || r.Intn(3) != 0:
			// Mostly-future pushes with occasional large gaps (beyond the
			// initial 64-bucket window) and occasional past-but-unpopped
			// cycles to exercise early-push handling.
			at := now + int64(r.Intn(200))
			if r.Intn(50) == 0 {
				at = now + int64(1000+r.Intn(5000))
			}
			v := step
			q.Push(at, v)
			w.Push(at, v)
		default:
			qa, qv := q.Pop()
			wa, wv := w.Pop()
			if qa != wa || qv != wv {
				t.Fatalf("step %d: queue popped (%d,%d), wheel popped (%d,%d)", step, qa, qv, wa, wv)
			}
			if qa > now {
				now = qa
			}
			if q.Len() != w.Len() {
				t.Fatalf("step %d: len mismatch queue=%d wheel=%d", step, q.Len(), w.Len())
			}
			if q.Len() > 0 && q.MinAt() != w.MinAt() {
				t.Fatalf("step %d: MinAt mismatch queue=%d wheel=%d", step, q.MinAt(), w.MinAt())
			}
		}
	}
	for q.Len() > 0 {
		qa, qv := q.Pop()
		wa, wv := w.Pop()
		if qa != wa || qv != wv {
			t.Fatalf("drain: queue popped (%d,%d), wheel popped (%d,%d)", qa, qv, wa, wv)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("wheel not empty after drain: %d", w.Len())
	}
}

// TestWheelFIFOWithinCycle pins that many events on one cycle pop in
// insertion order even when that bucket survives a growth rebuild.
func TestWheelFIFOWithinCycle(t *testing.T) {
	var w Wheel[int]
	for i := 0; i < 10; i++ {
		w.Push(5, i)
	}
	w.Push(5000, 99) // forces growth; bucket for cycle 5 moves wholesale
	for i := 0; i < 10; i++ {
		at, v := w.Pop()
		if at != 5 || v != i {
			t.Fatalf("pop %d: got (%d,%d), want (5,%d)", i, at, v, i)
		}
	}
	if at, v := w.Pop(); at != 5000 || v != 99 {
		t.Fatalf("final pop: got (%d,%d), want (5000,99)", at, v)
	}
}

// TestWheelReuse pins that a drained wheel restarts cleanly at an arbitrary
// later cycle (the window re-anchors on the first push of an empty wheel).
func TestWheelReuse(t *testing.T) {
	var w Wheel[string]
	w.Push(3, "a")
	w.Pop()
	w.Push(1 << 40, "b")
	w.Push(1<<40+1, "c")
	if at, v := w.Pop(); at != 1<<40 || v != "b" {
		t.Fatalf("got (%d,%q)", at, v)
	}
	if at, v := w.Pop(); at != 1<<40+1 || v != "c" {
		t.Fatalf("got (%d,%q)", at, v)
	}
}

func BenchmarkWheelPushPop(b *testing.B) {
	var w Wheel[int]
	r := rand.New(rand.NewSource(7))
	delays := make([]int64, 1024)
	for i := range delays {
		delays[i] = int64(1 + r.Intn(30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		w.Push(now+delays[i&1023], i)
		if w.Len() > 16 {
			at, _ := w.Pop()
			if at > now {
				now = at
			}
		}
	}
}
