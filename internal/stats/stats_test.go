package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 7, 100} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Errorf("N = %d", h.N)
	}
	if h.Max != 100 {
		t.Errorf("Max = %d", h.Max)
	}
	if got := h.Mean(); math.Abs(got-113.0/6) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if h.Percentile(100) != 100 {
		t.Errorf("p100 = %d", h.Percentile(100))
	}
	if p50 := h.Percentile(50); p50 > 3 {
		t.Errorf("p50 = %d", p50)
	}
	var empty Hist
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Error("empty hist should report zeros")
	}
}

// TestHistPercentileBounds property: percentiles never exceed the maximum
// observation and are monotone in p.
func TestHistPercentileBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Hist
		for _, v := range vals {
			h.Add(int64(v))
		}
		if h.N == 0 {
			return true
		}
		last := int64(0)
		for _, p := range []float64{10, 50, 90, 99, 100} {
			q := h.Percentile(p)
			if q > h.Max || q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Max != 0 || h.Sum != 0 {
		t.Errorf("negative not clamped: %+v", h)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("alpha", 1)
	tb.Row("b", 2.5)
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "2.500", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("GeoMean(1,1,1) = %v", got)
	}
	// Zeros and negatives are skipped, not poisonous.
	if got := GeoMean([]float64{0, -3, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with zeros = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero must be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestHistString(t *testing.T) {
	var h Hist
	h.Add(5)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Errorf("String = %q", s)
	}
}
