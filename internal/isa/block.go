package isa

import (
	"fmt"
	"strings"
)

// Block is one EDGE block: an atomic unit of fetch, map, execute and commit.
// Instructions within a block form a DAG in index order (targets always point
// to higher indices), which the validator in internal/program enforces.
type Block struct {
	ID     int
	Name   string
	Insts  []Inst
	Reads  []RegRead
	Writes []RegWrite
}

// NumMemOps returns the number of load/store instructions in the block.
func (b *Block) NumMemOps() int {
	n := 0
	for i := range b.Insts {
		if b.Insts[i].Op.IsMem() {
			n++
		}
	}
	return n
}

// NumBranches returns the number of branch instructions in the block.
func (b *Block) NumBranches() int {
	n := 0
	for i := range b.Insts {
		if b.Insts[i].Op.IsBranch() {
			n++
		}
	}
	return n
}

// WritesReg reports whether the block declares a write slot for reg.
func (b *Block) WritesReg(reg uint8) bool {
	for _, w := range b.Writes {
		if w.Reg == reg {
			return true
		}
	}
	return false
}

// String disassembles the block.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block %d %q  (%d insts, %d reads, %d writes)\n",
		b.ID, b.Name, len(b.Insts), len(b.Reads), len(b.Writes))
	for i, r := range b.Reads {
		fmt.Fprintf(&sb, "  R%-3d %s\n", i, r)
	}
	for i := range b.Insts {
		fmt.Fprintf(&sb, "  i%-3d %s\n", i, b.Insts[i].String())
	}
	for i, w := range b.Writes {
		fmt.Fprintf(&sb, "  W%-3d %s\n", i, w)
	}
	return sb.String()
}

// Program is a complete EDGE program: a set of blocks and an entry block.
// Execution starts at Entry and follows branch results until a branch
// targets HaltTarget.
type Program struct {
	Name   string
	Blocks []*Block
	Entry  int
}

// Block returns the block with the given ID, or nil.
func (p *Program) Block(id int) *Block {
	if id < 0 || id >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[id]
}

// StaticInsts returns the total static instruction count across all blocks.
func (p *Program) StaticInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// String disassembles the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %q: %d blocks, entry %d\n", p.Name, len(p.Blocks), p.Entry)
	for _, b := range p.Blocks {
		sb.WriteString(b.String())
	}
	return sb.String()
}
