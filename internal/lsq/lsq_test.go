package lsq

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/predictor"
)

func newQueue(t *testing.T, policy core.IssuePolicy, ss *predictor.StoreSet, oracle *predictor.Oracle) (*Queue, *mem.Memory, *core.TagSource) {
	t.Helper()
	m := mem.New()
	h, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	tags := &core.TagSource{}
	q := New(Config{Policy: policy}, m, h, tags, ss, oracle)
	return q, m, tags
}

func regBlock(q *Queue, seq int64, ops ...OpInfo) {
	for i := range ops {
		ops[i].LSID = int8(i)
		if ops[i].Size == 0 {
			ops[i].Size = 8
		}
	}
	q.RegisterBlock(seq, ops)
}

func TestForwarding(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})

	if vs := q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false); len(vs) != 0 {
		t.Fatalf("unexpected violations %v", vs)
	}
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if r.Deferred {
		t.Fatal("aggressive load deferred")
	}
	if r.Value != 42 {
		t.Fatalf("value = %d, want 42 (forwarded)", r.Value)
	}
	if q.Stats.Forwards != 1 {
		t.Errorf("Forwards = %d", q.Stats.Forwards)
	}
}

func TestLoadFromMemoryWhenNoStore(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 99, 8)
	regBlock(q, 0, OpInfo{})
	r := q.LoadTry(0, Key{0, 0}, 0x100, 0)
	if r.Deferred || r.Value != 99 {
		t.Fatalf("r = %+v", r)
	}
	if r.Latency < 2 {
		t.Errorf("memory load latency %d too small", r.Latency)
	}
}

func TestViolationOnLateStore(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})

	// Load issues aggressively before the older store's address is known.
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if r.Value != 7 {
		t.Fatalf("speculative value = %d, want 7 (memory)", r.Value)
	}
	// The older store now executes to the same address: violation.
	vs := q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Load != (Key{0, 1}) || vs[0].Value != 42 {
		t.Fatalf("violation = %+v", vs[0])
	}
	if vs[0].Tag == 0 {
		t.Error("violation must carry a fresh wave tag")
	}
	if q.Stats.Violations != 1 {
		t.Errorf("Violations = %d", q.Stats.Violations)
	}
}

func TestNoViolationWhenValueUnchanged(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 42, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})
	q.LoadTry(0, Key{0, 1}, 0x100, 0)
	// Store writes the value the load already read: silent, no wave.
	vs := q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	if len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestYoungerStoreDoesNotViolateOlderLoad(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{}, OpInfo{IsStore: true})
	r := q.LoadTry(0, Key{0, 0}, 0x100, 0)
	if r.Value != 7 {
		t.Fatal("load should read memory")
	}
	if vs := q.StoreUpdate(Key{0, 1}, 0x100, 42, 0, false, false); len(vs) != 0 {
		t.Fatalf("younger store violated older load: %v", vs)
	}
}

func TestByteWiseReconstruction(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 0x1111111111111111, 8)
	regBlock(q, 0, OpInfo{IsStore: true, Size: 1}, OpInfo{Size: 8})
	q.StoreUpdate(Key{0, 0}, 0x102, 0xAB, 0, false, false)
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	want := int64(0x1111111111AB1111)
	if r.Value != want {
		t.Fatalf("value = %#x, want %#x", r.Value, want)
	}
	if q.Stats.PartialForwards != 1 {
		t.Errorf("PartialForwards = %d", q.Stats.PartialForwards)
	}
}

func TestYoungestStoreWinsForwarding(t *testing.T) {
	q, _, _ := newQueue(t, core.IssueAggressive, nil, nil)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{IsStore: true}, OpInfo{})
	q.StoreUpdate(Key{0, 0}, 0x100, 1, 0, false, false)
	q.StoreUpdate(Key{0, 1}, 0x100, 2, 0, false, false)
	r := q.LoadTry(0, Key{0, 2}, 0x100, 0)
	if r.Value != 2 {
		t.Fatalf("value = %d, want 2 (youngest older store)", r.Value)
	}
}

func TestNullifyRestoresMemoryValue(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})
	q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if r.Value != 42 {
		t.Fatal("load should forward 42")
	}
	// The store turns out to be predicated off: the load must revert.
	vs := q.StoreNullify(Key{0, 0})
	if len(vs) != 1 || vs[0].Value != 7 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestStoreAddressChange(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	m.Write(0x200, 9, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{}, OpInfo{})
	q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	rA := q.LoadTry(0, Key{0, 1}, 0x100, 0) // forwards 42
	rB := q.LoadTry(0, Key{0, 2}, 0x200, 0) // reads memory 9
	if rA.Value != 42 || rB.Value != 9 {
		t.Fatalf("rA=%d rB=%d", rA.Value, rB.Value)
	}
	// The store re-executes to a different address: both loads change.
	vs := q.StoreUpdate(Key{0, 0}, 0x200, 42, 0, false, false)
	if len(vs) != 2 {
		t.Fatalf("violations = %+v", vs)
	}
	got := map[Key]int64{}
	for _, v := range vs {
		got[v.Load] = v.Value
	}
	if got[Key{0, 1}] != 7 || got[Key{0, 2}] != 42 {
		t.Fatalf("corrections = %v", got)
	}
}

func TestConservativeDefersUntilStoresExecute(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueConservative, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if !r.Deferred || r.Reason != DeferPolicy {
		t.Fatalf("r = %+v", r)
	}
	if got := q.TakeReady(1, nil); got != nil {
		t.Fatalf("load released early: %v", got)
	}
	q.StoreUpdate(Key{0, 0}, 0x300, 1, 0, false, false) // disjoint address, but now executed
	ready := q.TakeReady(2, nil)
	if len(ready) != 1 || ready[0].Res.Value != 7 {
		t.Fatalf("ready = %+v", ready)
	}
	// Conservative never mis-speculates: no violations ever reported for
	// already-issued loads with all older stores executed.
	if q.Stats.Violations != 0 {
		t.Error("conservative policy produced violations")
	}
}

func TestConservativeWithinBlockOrder(t *testing.T) {
	q, _, _ := newQueue(t, core.IssueConservative, nil, nil)
	regBlock(q, 0, OpInfo{}, OpInfo{IsStore: true})
	// The load is OLDER than the store (lower LSID): it need not wait.
	r := q.LoadTry(0, Key{0, 0}, 0x100, 0)
	if r.Deferred {
		t.Fatal("load older than all stores must issue")
	}
}

func TestStoreSetPolicyLearns(t *testing.T) {
	ss := predictor.MustNew(predictor.DefaultConfig())
	q, m, _ := newQueue(t, core.IssueStoreSet, ss, nil)
	m.Write(0x100, 7, 8)
	loadPC := predictor.MakePC(0, 5)
	storePC := predictor.MakePC(0, 3)
	regBlock(q, 0,
		OpInfo{IsStore: true, PC: storePC},
		OpInfo{PC: loadPC})

	// Untrained: the load issues immediately and gets violated.
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if r.Deferred {
		t.Fatal("untrained store-set load deferred")
	}
	vs := q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	q.Drain(0)

	// Same static pair again: the load now waits for the store.
	regBlock(q, 1,
		OpInfo{IsStore: true, PC: storePC},
		OpInfo{PC: loadPC})
	r = q.LoadTry(0, Key{1, 1}, 0x100, 0)
	if !r.Deferred {
		t.Fatal("trained store-set load did not defer")
	}
	q.StoreUpdate(Key{1, 0}, 0x100, 43, 0, false, false)
	ready := q.TakeReady(1, nil)
	if len(ready) != 1 || ready[0].Res.Value != 43 {
		t.Fatalf("ready = %+v", ready)
	}
	if q.Stats.Violations != 1 {
		t.Errorf("violations = %d, want 1 (trained run is clean)", q.Stats.Violations)
	}
}

func TestOraclePolicy(t *testing.T) {
	deps := map[predictor.DynRef]predictor.DynRef{
		{Seq: 0, LSID: 1}: {Seq: 0, LSID: 0},
	}
	q, m, _ := newQueue(t, core.IssueOracle, nil, predictor.NewOracle(deps))
	m.Write(0x100, 7, 8)
	m.Write(0x200, 8, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{}, OpInfo{})

	// Load 1 truly depends on store 0: it must wait.
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if !r.Deferred {
		t.Fatal("oracle-dependent load issued early")
	}
	// Load 2 has no dependence: it issues immediately.
	r2 := q.LoadTry(0, Key{0, 2}, 0x200, 0)
	if r2.Deferred || r2.Value != 8 {
		t.Fatalf("independent load: %+v", r2)
	}
	q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	ready := q.TakeReady(1, nil)
	if len(ready) != 1 || ready[0].Res.Value != 42 {
		t.Fatalf("ready = %+v", ready)
	}
	if q.Stats.Violations != 0 {
		t.Error("oracle policy mis-speculated")
	}
}

func TestCertificationWaitsForOlderStores(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})
	q.LoadTry(0, Key{0, 1}, 0x100, 0)
	q.LoadInputsCommitted(Key{0, 1})
	if cs := q.TakeCertifiable(nil); len(cs) != 0 {
		t.Fatalf("certified before older store committed: %v", cs)
	}
	q.StoreUpdate(Key{0, 0}, 0x300, 1, 0, false, false)
	if cs := q.TakeCertifiable(nil); len(cs) != 0 {
		t.Fatalf("certified before older store committed: %v", cs)
	}
	q.StoreCommitted(Key{0, 0})
	cs := q.TakeCertifiable(nil)
	if len(cs) != 1 || cs[0].Value != 7 {
		t.Fatalf("certifiable = %+v", cs)
	}
	// Idempotent.
	if cs := q.TakeCertifiable(nil); len(cs) != 0 {
		t.Fatalf("double certification: %v", cs)
	}
}

func TestCertificationAcrossBlocks(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true})
	regBlock(q, 1, OpInfo{})
	q.LoadTry(0, Key{1, 0}, 0x100, 0)
	q.LoadInputsCommitted(Key{1, 0})
	if cs := q.TakeCertifiable(nil); len(cs) != 0 {
		t.Fatal("certified across uncommitted older block")
	}
	q.StoreUpdate(Key{0, 0}, 0x100, 5, 0, false, false)
	// The violation correction happened; now commit the store.
	q.StoreCommitted(Key{0, 0})
	cs := q.TakeCertifiable(nil)
	if len(cs) != 1 || cs[0].Value != 5 {
		t.Fatalf("certifiable = %+v", cs)
	}
}

func TestDrainWritesMemoryInOrder(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{IsStore: true})
	q.StoreUpdate(Key{0, 1}, 0x100, 2, 0, false, false) // younger executes first
	q.StoreUpdate(Key{0, 0}, 0x100, 1, 0, false, false)
	if n := q.Drain(0); n != 2 {
		t.Fatalf("drained %d stores", n)
	}
	if got := m.Read(0x100, 8); got != 2 {
		t.Fatalf("mem = %d, want 2 (LSID order)", got)
	}
	if q.Occupancy() != 0 {
		t.Error("entries remain after drain")
	}
}

func TestDrainSkipsNullStores(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	regBlock(q, 0, OpInfo{IsStore: true})
	q.StoreNullify(Key{0, 0})
	if n := q.Drain(0); n != 0 {
		t.Fatalf("drained %d stores, want 0", n)
	}
	if got := m.Read(0x100, 8); got != 0 {
		t.Fatal("null store wrote memory")
	}
}

func TestSquashRemovesEntries(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true})
	regBlock(q, 1, OpInfo{})
	regBlock(q, 2, OpInfo{IsStore: true})
	q.LoadTry(0, Key{1, 0}, 0x100, 0)
	q.SquashFrom(1)
	if q.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", q.Occupancy())
	}
	// Messages for squashed blocks are ignored.
	if vs := q.StoreUpdate(Key{2, 0}, 0x100, 9, 0, false, false); vs != nil {
		t.Fatalf("stale store produced violations: %v", vs)
	}
	r := q.LoadTry(0, Key{1, 0}, 0x100, 0)
	if !r.Deferred {
		t.Fatal("stale load message must be swallowed (deferred, no reply)")
	}
	// Refetch re-registers the blocks.
	regBlock(q, 1, OpInfo{})
	r = q.LoadTry(0, Key{1, 0}, 0x100, 0)
	if r.Deferred || r.Value != 7 {
		t.Fatalf("refetched load: %+v", r)
	}
}

func TestChainedViolationThroughStoreData(t *testing.T) {
	// load A forwards from store S1; S1's data changes (its own producer
	// was violated); the dependent load must be re-corrected.
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})
	q.StoreUpdate(Key{0, 0}, 0x100, 10, 0, false, false)
	r := q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if r.Value != 10 {
		t.Fatal("load should forward 10")
	}
	vs := q.StoreUpdate(Key{0, 0}, 0x100, 20, 0, false, false) // re-execution with new data
	if len(vs) != 1 || vs[0].Value != 20 {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].Tag <= r.Tag {
		t.Error("correction tag must be newer than original reply tag")
	}
}

func TestFlushGuardForcesConservativeReplay(t *testing.T) {
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})

	// First attempt: aggressive load issues, store violates it, the machine
	// flushes and guards the load's dynamic key.
	q.LoadTry(0, Key{0, 1}, 0x100, 0)
	if vs := q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false); len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	q.GuardLoad(Key{0, 1})
	q.SquashFrom(0)

	// Replay: the guarded instance must now wait for the older store even
	// under the aggressive policy.
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{})
	r := q.LoadTry(1, Key{0, 1}, 0x100, 0)
	if !r.Deferred {
		t.Fatal("guarded replay issued aggressively")
	}
	q.StoreUpdate(Key{0, 0}, 0x100, 42, 0, false, false)
	ready := q.TakeReady(2, nil)
	if len(ready) != 1 || ready[0].Res.Value != 42 {
		t.Fatalf("ready = %+v", ready)
	}
	if q.Stats.GuardedLoads != 1 {
		t.Errorf("GuardedLoads = %d", q.Stats.GuardedLoads)
	}

	// Draining the block clears the guard.
	q.StoreCommitted(Key{0, 0})
	q.Drain(0)
	regBlock(q, 1, OpInfo{IsStore: true}, OpInfo{})
	r = q.LoadTry(3, Key{1, 1}, 0x100, 0)
	if r.Deferred {
		t.Fatal("fresh instance inherited a stale guard")
	}
}

func TestPartialStoreCommitReleasesDisjointLoads(t *testing.T) {
	// A load older stores: one disjoint store with committed ADDRESS (data
	// pending) must not block certification; an overlapping one must.
	q, m, _ := newQueue(t, core.IssueAggressive, nil, nil)
	m.Write(0x100, 7, 8)
	regBlock(q, 0, OpInfo{IsStore: true}, OpInfo{IsStore: true}, OpInfo{})
	q.StoreUpdate(Key{0, 0}, 0x900, 1, 0, true, false)  // disjoint, addr final
	q.StoreUpdate(Key{0, 1}, 0x100, 42, 0, true, false) // overlapping, data pending
	q.LoadTry(0, Key{0, 2}, 0x100, 0)
	q.LoadInputsCommitted(Key{0, 2})
	if cs := q.TakeCertifiable(nil); len(cs) != 0 {
		t.Fatalf("certified past an overlapping uncommitted store: %v", cs)
	}
	// Commit the overlapping store's data: only then may the load certify,
	// without waiting for the disjoint store's data at all.
	q.StoreUpdate(Key{0, 1}, 0x100, 42, 0, true, true)
	cs := q.TakeCertifiable(nil)
	if len(cs) != 1 || cs[0].Value != 42 {
		t.Fatalf("certifiable = %+v", cs)
	}
}
