// Package sim is the cycle-level simulator of a TRIPS-like EDGE processor,
// tying the substrates together: block fetch and next-block prediction,
// frame allocation onto the execution-tile grid, dataflow issue over the
// operand mesh, the load/store queue, and block-atomic commit — with the
// DSRE protocol (internal/core) handling mis-speculation recovery.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/predictor"
)

// Config holds every machine parameter.  The zero value is not runnable;
// start from DefaultConfig.
type Config struct {
	// Grid dimensions in execution tiles.
	GridWidth  int
	GridHeight int
	// Frames is the number of blocks that can be in flight (window size =
	// Frames × 128 instruction slots).
	Frames int

	// Recovery selects flush vs DSRE mis-speculation recovery.
	Recovery core.RecoveryScheme
	// Policy selects the load-issue dependence policy.
	Policy core.IssuePolicy

	// SuppressIdenticalValues stops re-execution waves whose recomputed
	// value is unchanged (ablation E7).
	SuppressIdenticalValues bool
	// CommitTokensFree delivers commit-wave tokens without consuming
	// operand-network bandwidth (ablation E6).
	CommitTokensFree bool

	// HopLatency and LinkBandwidth parameterise the operand mesh.
	HopLatency    int
	LinkBandwidth int

	// Hier is the cache hierarchy configuration.
	Hier cache.HierConfig
	// StoreSet sizes the store-set predictor (Policy == IssueStoreSet).
	StoreSet predictor.Config

	// ForwardLatency and ViolationLatency parameterise the LSQ.
	ForwardLatency   int
	ViolationLatency int

	// FetchCycles is the fixed block fetch/map pipeline depth added to the
	// I-cache access latency.
	FetchCycles int
	// RegReadLatency is the register-file read latency charged to
	// architecturally-bound register reads at map time.
	RegReadLatency int

	// ALULatency, MulLatency and DivLatency give execution latencies;
	// loads/stores use ALULatency for address generation.
	ALULatency int
	MulLatency int
	DivLatency int

	// ValuePredict enables stride load-value prediction: confident loads
	// deliver a predicted value in one cycle, and mis-predictions are
	// repaired by DSRE waves — the protocol's second application.
	ValuePredict bool
	// LSQCapacity bounds resident LSQ entries; block mapping stalls when
	// the block's memory operations would not fit (zero = unbounded).
	// TRIPS sized its LSQ at one entry per block LSID slot; undersizing it
	// throttles the window for memory-heavy code.
	LSQCapacity int
	// DTileBanks is the number of data-tile ports on the left mesh column
	// that memory traffic is interleaved across by cache-line address
	// (clamped to GridHeight).  One bank is a single hot LSQ port; the
	// TRIPS-like default uses one bank per row.
	DTileBanks int
	// Placement selects how block instructions map onto tiles.
	Placement PlacementKind
	// BlockPred selects the next-block predictor.
	BlockPred BlockPredKind
	// BlockPredBits sizes the two-level predictor table (2^bits entries).
	BlockPredBits int
	// PerfectBlockPred drives fetch from the emulator's committed block
	// trace instead of the predictor, isolating memory speculation effects
	// (equivalent to BlockPred = PredPerfect).
	PerfectBlockPred bool

	// MaxCycles aborts runs that stop making progress; zero means 1<<62.
	MaxCycles int64
	// DeadlockCycles aborts when no block commits for this many cycles
	// (a protocol bug, not a modelling condition).  Zero means 200000.
	DeadlockCycles int64

	// SlowTick disables the event-driven fast paths (active-router network
	// ticking, active-tile worklists, idle-gap fast-forward) and steps every
	// structure every cycle.  It is a differential-testing escape hatch: the
	// fast paths are required to produce byte-identical results, so the flag
	// cannot change any output and Canonical() erases it (two configs
	// differing only in SlowTick share a sweep cache entry).
	SlowTick bool
}

// DefaultConfig is the TRIPS-like baseline machine of the paper's
// configuration table (experiment E1): a 4×4 grid of execution tiles, 8
// 128-instruction blocks in flight (1024-instruction window), 1-cycle mesh
// hops, 32KB L1s, 1MB L2.
func DefaultConfig() Config {
	return Config{
		GridWidth:               4,
		GridHeight:              4,
		Frames:                  8,
		Recovery:                core.RecoverDSRE,
		Policy:                  core.IssueStoreSet,
		SuppressIdenticalValues: true,
		CommitTokensFree:        false,
		HopLatency:              1,
		LinkBandwidth:           4,
		Hier:                    cache.DefaultHierConfig(),
		StoreSet:                predictor.DefaultConfig(),
		ForwardLatency:          2,
		ViolationLatency:        2,
		FetchCycles:             8,
		RegReadLatency:          2,
		DTileBanks:              4,
		Placement:               PlaceRoundRobin,
		BlockPred:               PredTwoLevel,
		BlockPredBits:           12,
		ALULatency:              1,
		MulLatency:              3,
		DivLatency:              12,
		PerfectBlockPred:        false,
		MaxCycles:               0,
		DeadlockCycles:          0,
	}
}

// ConfigError reports a configuration field that would deadlock or crash
// the machine, caught before construction instead of deep inside a run.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate sanity-checks the configuration.  Nonsensical machines (zero
// tiles, a window smaller than one block, dead network links) are rejected
// with a *ConfigError naming the field, so callers building configurations
// programmatically — the sweep engine in particular — fail fast instead of
// deadlocking mid-simulation.
func (c *Config) Validate() error {
	if c.GridWidth < 1 || c.GridHeight < 1 {
		return &ConfigError{"GridWidth/GridHeight", fmt.Sprintf("grid %dx%d needs at least one execution tile", c.GridWidth, c.GridHeight)}
	}
	if c.WindowInsts() < isa.MaxInsts {
		return &ConfigError{"Frames", fmt.Sprintf("window of %d instructions cannot hold one %d-instruction block", c.WindowInsts(), isa.MaxInsts)}
	}
	if c.Frames < 2 {
		return &ConfigError{"Frames", fmt.Sprintf("%d frames (need >= 2 for any speculation)", c.Frames)}
	}
	if c.HopLatency < 1 {
		return &ConfigError{"HopLatency", fmt.Sprintf("%d-cycle hops (need >= 1)", c.HopLatency)}
	}
	if c.LinkBandwidth < 1 {
		return &ConfigError{"LinkBandwidth", fmt.Sprintf("%d msgs/link/cycle (need >= 1)", c.LinkBandwidth)}
	}
	if c.ALULatency < 1 || c.MulLatency < 1 || c.DivLatency < 1 {
		return &ConfigError{"ALULatency/MulLatency/DivLatency", "zero execution latency"}
	}
	if c.FetchCycles < 1 {
		return &ConfigError{"FetchCycles", fmt.Sprintf("%d fetch cycles (need >= 1)", c.FetchCycles)}
	}
	if c.LSQCapacity < 0 {
		return &ConfigError{"LSQCapacity", fmt.Sprintf("%d entries (zero means unbounded; negative is meaningless)", c.LSQCapacity)}
	}
	if c.LSQCapacity > 0 && c.LSQCapacity < isa.MaxMemOps {
		return &ConfigError{"LSQCapacity", fmt.Sprintf("%d entries cannot hold one block's %d memory ops — mapping would deadlock", c.LSQCapacity, isa.MaxMemOps)}
	}
	if c.DTileBanks < 0 {
		return &ConfigError{"DTileBanks", fmt.Sprintf("%d banks (zero means default; negative is meaningless)", c.DTileBanks)}
	}
	if c.MaxCycles < 0 || c.DeadlockCycles < 0 {
		return &ConfigError{"MaxCycles/DeadlockCycles", "negative cycle budget"}
	}
	return nil
}

// Canonical returns the configuration with every zero-means-default and
// alias field resolved to its effective value: MaxCycles/DeadlockCycles
// become their working budgets, DTileBanks is clamped exactly as the
// machine clamps it, and the PerfectBlockPred flag and PredPerfect kind
// imply each other.  Two configurations that build identical machines have
// identical canonical forms, which is what makes a content hash over the
// canonical form a safe cache key (see internal/sweep).
func (c Config) Canonical() Config {
	c.MaxCycles = c.maxCycles()
	c.DeadlockCycles = c.deadlockCycles()
	if c.DTileBanks < 1 {
		c.DTileBanks = 1
	}
	if c.DTileBanks > c.GridHeight {
		c.DTileBanks = c.GridHeight
	}
	if c.PerfectBlockPred {
		c.BlockPred = PredPerfect
	}
	if c.BlockPred == PredPerfect {
		c.PerfectBlockPred = true
	}
	// SlowTick is proven result-identical (the differential tests in
	// fastpath_test.go pin byte-equality), so it must not split the sweep
	// cache: both settings canonicalise to the fast path.
	c.SlowTick = false
	return c
}

func (c *Config) maxCycles() int64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	return 1 << 62
}

func (c *Config) deadlockCycles() int64 {
	if c.DeadlockCycles > 0 {
		return c.DeadlockCycles
	}
	return 200000
}

// opLatency returns the execution latency of an opcode.
func (c *Config) opLatency(op isa.Opcode) int {
	switch op {
	case isa.OpMul:
		return c.MulLatency
	case isa.OpDiv, isa.OpRem:
		return c.DivLatency
	default:
		return c.ALULatency
	}
}

// netConfig derives the mesh configuration: the execution grid plus one
// column of D/G tiles on the left (x=0) and one row of register tiles on
// top (y=0).
func (c *Config) netConfig() noc.Config {
	return noc.Config{
		Width:         c.GridWidth + 1,
		Height:        c.GridHeight + 1,
		HopLatency:    c.HopLatency,
		LinkBandwidth: c.LinkBandwidth,
		LocalLatency:  1,
		DenseTick:     c.SlowTick,
	}
}

// WindowInsts returns the instruction-window capacity (frames × block size).
func (c *Config) WindowInsts() int { return c.Frames * 128 }
