package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/telemetry"
)

// Phase names one segment of a job's lifecycle.  The engine records the
// phases of every job as a contiguous chain of spans: each phase starts
// exactly where the previous one ended, so per-job span totals telescope
// to wall time by construction (pinned by the engine's span test).
type Phase uint8

const (
	// PhaseQueueWait runs from sweep feed start to worker pickup.
	PhaseQueueWait Phase = iota
	// PhaseCacheLookup covers the content-addressed store probe.
	PhaseCacheLookup
	// PhasePrepare covers the memoized workload build + golden run (the
	// default runner only; custom runners fold it into PhaseRun).
	PhasePrepare
	// PhaseRun covers one simulation attempt (one span per attempt).
	PhaseRun
	// PhaseStoreWrite covers writing the result object to the store.
	PhaseStoreWrite
	// PhaseRemoteRun covers a fleet job's execution on a remote worker,
	// from lease grant to result upload (the daemon cannot split the
	// worker-side prepare/run; the worker's own span log can).
	PhaseRemoteRun
	// PhaseUpload covers the daemon-side processing of a fleet result
	// upload (payload verification + store write + queue completion).
	PhaseUpload
)

// String returns the phase's wire spelling.
func (p Phase) String() string {
	switch p {
	case PhaseQueueWait:
		return "queue-wait"
	case PhaseCacheLookup:
		return "cache-lookup"
	case PhasePrepare:
		return "prepare"
	case PhaseRun:
		return "run"
	case PhaseStoreWrite:
		return "store-write"
	case PhaseRemoteRun:
		return "remote-run"
	case PhaseUpload:
		return "upload"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// MarshalJSON writes the phase as its wire spelling.
func (p Phase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON parses the wire spelling back; span chains travel inside
// fleet complete uploads, so unknown spellings are a decode error rather
// than silent drift.
func (p *Phase) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for q := PhaseQueueWait; q <= PhaseUpload; q++ {
		if q.String() == s {
			*p = q
			return nil
		}
	}
	return fmt.Errorf("obs: unknown phase %q", s)
}

// PhaseSpan is one recorded phase; offsets are nanoseconds relative to the
// observer's start instant.
type PhaseSpan struct {
	Phase   Phase `json:"phase"`
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
}

// JobSpans is the complete lifecycle of one unique job.  The trace fields
// are stamped by the fleet layer (internal/obs/tracing): Trace/Span carry
// the propagated hex trace-context IDs, Origin names the process that
// recorded the chain ("daemon" for queue-side chains, the worker ID for
// shipped worker-side chains, empty for plain local sweeps), Peer names
// the lease holder on daemon-side chains, and Attempt is the lease attempt
// the chain belongs to.
type JobSpans struct {
	Name     string      `json:"name"`
	Hash     string      `json:"hash,omitempty"`
	Grid     string      `json:"grid,omitempty"`
	Worker   int         `json:"worker"`
	Status   string      `json:"status,omitempty"`
	CacheHit bool        `json:"cache_hit,omitempty"`
	Trace    string      `json:"trace,omitempty"`
	Span     string      `json:"span,omitempty"`
	Origin   string      `json:"origin,omitempty"`
	Peer     string      `json:"peer,omitempty"`
	Attempt  int         `json:"attempt,omitempty"`
	Phases   []PhaseSpan `json:"phases"`
}

// SpanLog collects job lifecycles for export.  Appends are mutex-guarded;
// jobs are kept in completion order, which is deterministic enough for the
// trace viewer (each worker's lane is internally ordered by time).
type SpanLog struct {
	mu   sync.Mutex
	jobs []JobSpans
}

// NewSpanLog returns an empty log.
func NewSpanLog() *SpanLog {
	return &SpanLog{}
}

// Add appends one finished job.
func (l *SpanLog) Add(j JobSpans) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.jobs = append(l.jobs, j)
}

// Jobs returns a copy of the recorded lifecycles.
func (l *SpanLog) Jobs() []JobSpans {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]JobSpans(nil), l.jobs...)
}

// TakeByHash removes and returns every chain recorded for one job hash —
// the fleet worker's span-shipping extraction.  Concurrent lease slots
// always hold distinct hashes (the daemon leases a job to one worker at a
// time), so the removal is race-free per job.
func (l *SpanLog) TakeByHash(hash string) []JobSpans {
	l.mu.Lock()
	defer l.mu.Unlock()
	var taken []JobSpans
	kept := l.jobs[:0]
	for _, j := range l.jobs {
		if j.Hash == hash {
			taken = append(taken, j)
		} else {
			kept = append(kept, j)
		}
	}
	l.jobs = kept
	return taken
}

// WriteChromeTrace renders the log as catapult JSON on one process lane
// ("sweep") with one thread lane per worker, reusing the telemetry
// trace-event writer.  Each job renders as an enclosing span with its
// phases nested inside; nanosecond offsets map onto trace microseconds.
func (l *SpanLog) WriteChromeTrace(w io.Writer) error {
	jobs := l.Jobs()
	b := telemetry.NewTraceBuilder()
	b.SetMeta("source", "dsre-sweep")
	b.SetMeta("time_unit", "wall microseconds")
	b.Process(0, "sweep")

	maxWorker := -1
	for i := range jobs {
		if jobs[i].Worker > maxWorker {
			maxWorker = jobs[i].Worker
		}
	}
	for wkr := 0; wkr <= maxWorker; wkr++ {
		b.Thread(0, wkr, fmt.Sprintf("worker %d", wkr))
	}

	for i := range jobs {
		j := &jobs[i]
		if len(j.Phases) == 0 {
			continue
		}
		start := j.Phases[0].StartNS
		end := j.Phases[len(j.Phases)-1].EndNS
		b.Span(0, j.Worker, j.Name, "job", start/1000, (end-start)/1000, map[string]any{
			"hash": j.Hash, "grid": j.Grid, "status": j.Status, "cache_hit": j.CacheHit,
		})
		for _, ph := range j.Phases {
			b.Span(0, j.Worker, ph.Phase.String(), "phase",
				ph.StartNS/1000, (ph.EndNS-ph.StartNS)/1000, nil)
		}
	}
	return b.Write(w)
}
