package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/sweep"
)

// job is one unique simulation point in the queue, content-addressed by
// its spec hash.  Every submitted spec copy with the same hash shares this
// one job — the service-level form of the engine's in-sweep dedup.
type job struct {
	spec sweep.JobSpec // canonical spelling
	hash string
	name string

	state    JobState
	attempts int    // lease grants so far
	leaseID  string // current lease when leased
	peer     string // holder of the current lease
	expiry   time.Time
	noExpiry bool // local leases never expire (the dispatcher can't crash apart from the queue)

	trace tracing.TraceID // trace of the sweep that enqueued the job
	span  tracing.SpanID  // span of the current lease attempt

	enqueuedNS int64 // obs-relative enqueue stamp (queue-wait span anchor)
	result     *sweep.JobResult
	sweeps     []*sweepRun // submissions referencing this job
}

// sweepRun is one accepted submission: the specs in order, the hash each
// resolved to, and how many unique jobs are still open.
type sweepRun struct {
	id        string
	tenant    string
	trace     tracing.TraceID
	specs     []sweep.JobSpec
	hashes    []string
	copies    map[string]int
	open      int // unique non-terminal jobs
	uniqueNew int // unique jobs this submit enqueued
}

// LeasedJob is one lease grant handed to a worker (or to the local
// dispatcher).  Trace/Span are the attempt's trace-context IDs.
type LeasedJob struct {
	Lease   string
	Hash    string
	Name    string
	Spec    sweep.JobSpec
	Attempt int
	Trace   tracing.TraceID
	Span    tracing.SpanID
}

// Errors the HTTP layer maps onto status codes.
var (
	// ErrLeaseGone rejects heartbeats for leases that expired or closed.
	ErrLeaseGone = fmt.Errorf("serve: lease expired or unknown")
	// ErrUnknownJob rejects completions for hashes the queue never saw.
	ErrUnknownJob = fmt.Errorf("serve: unknown job")
)

// Queue is the daemon's job table: unique jobs keyed by content hash, a
// FIFO of queued work, outstanding leases, and the submissions that
// reference them.  All observability flows through the injected ServeObs,
// always called while holding the queue lock (obs takes its own lock
// second and never calls back, so the order is acyclic).
type Queue struct {
	obs         *obs.ServeObs
	leaseTTL    time.Duration
	maxAttempts int
	minter      *tracing.Minter

	mu       sync.Mutex
	jobs     map[string]*job
	fifo     []*job // queued jobs in arrival order (stale entries skipped)
	queued   int
	leases   map[string]*job
	sweeps   map[string]*sweepRun
	order    []string // sweep submission order
	sweepSeq int
	leaseSeq int

	signal chan struct{} // 1-buffered wake for the local dispatcher
}

// NewQueue builds a queue.  o is required; leaseTTL bounds fleet-lease
// heartbeat gaps; maxAttempts bounds lease grants per job; minter mints
// trace/span IDs (nil gets a zero-seeded minter — fine for tests, daemons
// should seed from their start instant so fleets stay collision-free).
func NewQueue(o *obs.ServeObs, leaseTTL time.Duration, maxAttempts int, minter *tracing.Minter) *Queue {
	if leaseTTL <= 0 {
		leaseTTL = 10 * time.Second
	}
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	if minter == nil {
		minter = tracing.NewMinter(0)
	}
	q := &Queue{
		obs:         o,
		leaseTTL:    leaseTTL,
		maxAttempts: maxAttempts,
		minter:      minter,
		jobs:        map[string]*job{},
		leases:      map[string]*job{},
		sweeps:      map[string]*sweepRun{},
		signal:      make(chan struct{}, 1),
	}
	return q
}

func (q *Queue) lock()   { q.mu.Lock() }
func (q *Queue) unlock() { q.mu.Unlock() }

// wake nudges the local dispatcher; non-blocking so it is safe under the
// queue lock.
func (q *Queue) wake() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// Wake is the dispatcher's wait channel: one token per enqueue edge.
func (q *Queue) Wake() <-chan struct{} { return q.signal }

// Submit registers one sweep: specs with their precomputed content hashes
// (the server canonicalises, validates and hashes before locking), and
// hits marking hashes the store already holds.  It returns the assigned
// sweep ID.  Specs whose hash matches an existing job attach to it; store
// hits materialise as already-done jobs; the rest enqueue.
func (q *Queue) Submit(tenant string, specs []sweep.JobSpec, hashes []string, hits map[string]bool, trace tracing.TraceID, now time.Time) string {
	q.lock()
	defer q.unlock()

	if trace.IsZero() {
		trace = q.minter.NextTrace()
	}
	q.sweepSeq++
	s := &sweepRun{
		id:     fmt.Sprintf("s-%04d", q.sweepSeq),
		tenant: tenant,
		trace:  trace,
		specs:  specs,
		hashes: hashes,
		copies: map[string]int{},
	}
	for _, h := range hashes {
		s.copies[h]++
	}

	uniqueNew, cachedNow, failedNow := 0, 0, 0
	seen := map[string]bool{}
	for i, h := range hashes {
		if seen[h] {
			continue
		}
		seen[h] = true
		copies := s.copies[h]
		j, ok := q.jobs[h]
		if !ok {
			j = &job{spec: specs[i], hash: h, name: specs[i].Name(), trace: trace}
			q.jobs[h] = j
			if hits[h] {
				j.state = JobDone
				j.result = &sweep.JobResult{
					Spec: j.spec, Hash: h, Status: sweep.StatusOK, CacheHit: true,
				}
			} else {
				j.state = JobQueued
				j.enqueuedNS = q.obs.Rel(now)
				q.fifo = append(q.fifo, j)
				q.queued++
				uniqueNew++
				q.obs.JobQueued()
				q.wake()
			}
		}
		j.sweeps = append(j.sweeps, s)
		if j.state.Terminal() {
			if j.state == JobDone {
				cachedNow += copies
			} else {
				failedNow += copies
			}
		} else {
			s.open++
		}
	}
	s.uniqueNew = uniqueNew
	q.sweeps[s.id] = s
	q.order = append(q.order, s.id)

	q.obs.SweepSubmitted(s.id, tenant, trace.String(), len(specs), uniqueNew, cachedNow, now)
	if failedNow > 0 || s.open == 0 {
		q.obs.SweepProgress(s.id, 0, 0, failedNow, s.open == 0, now)
	}
	return s.id
}

// Lease grants the oldest queued job to peer.  Fleet leases expire after
// the queue's TTL unless heartbeated; local leases (noExpiry) never do.
func (q *Queue) Lease(peer string, noExpiry bool, now time.Time) (LeasedJob, bool) {
	q.lock()
	defer q.unlock()
	return q.leaseLocked(peer, noExpiry, now)
}

// LeaseBatch grants up to max queued jobs to peer in one call (the local
// dispatcher's batching path).
func (q *Queue) LeaseBatch(peer string, max int, noExpiry bool, now time.Time) []LeasedJob {
	q.lock()
	defer q.unlock()
	var batch []LeasedJob
	for len(batch) < max {
		lj, ok := q.leaseLocked(peer, noExpiry, now)
		if !ok {
			break
		}
		batch = append(batch, lj)
	}
	return batch
}

func (q *Queue) leaseLocked(peer string, noExpiry bool, now time.Time) (LeasedJob, bool) {
	var j *job
	for len(q.fifo) > 0 {
		head := q.fifo[0]
		q.fifo = q.fifo[1:]
		if head.state == JobQueued {
			j = head
			break
		}
	}
	if j == nil {
		return LeasedJob{}, false
	}
	q.queued--
	j.state = JobLeased
	j.attempts++
	j.peer = peer
	j.noExpiry = noExpiry
	if !noExpiry {
		j.expiry = now.Add(q.leaseTTL)
	} else {
		j.expiry = time.Time{}
	}
	q.leaseSeq++
	j.leaseID = fmt.Sprintf("L%06d", q.leaseSeq)
	j.span = q.minter.NextSpan()
	q.leases[j.leaseID] = j

	q.obs.Lease(peer, j.hash, j.name, j.leaseID, j.trace.String(), j.span.String(), j.attempts, j.enqueuedNS, now)
	return LeasedJob{
		Lease: j.leaseID, Hash: j.hash, Name: j.name, Spec: j.spec,
		Attempt: j.attempts, Trace: j.trace, Span: j.span,
	}, true
}

// Heartbeat extends a live fleet lease, returning the refreshed TTL.
func (q *Queue) Heartbeat(leaseID string, now time.Time) (time.Duration, error) {
	q.lock()
	defer q.unlock()
	j, ok := q.leases[leaseID]
	if !ok || j.state != JobLeased || j.leaseID != leaseID {
		return 0, ErrLeaseGone
	}
	if !j.noExpiry {
		j.expiry = now.Add(q.leaseTTL)
	}
	q.obs.Heartbeat(j.peer, now)
	return q.leaseTTL, nil
}

// Complete applies one result upload.  First write wins: the first
// successful result for a hash completes the job even if its lease
// expired (a slow worker's late upload is still a valid, verified
// payload); everything after is a duplicate.  A failed result under a
// live lease requeues the job until its attempts run out.
func (q *Queue) Complete(leaseID, peer, hash string, res sweep.JobResult, upload bool, now time.Time) (accepted, duplicate bool, state JobState, err error) {
	q.lock()
	defer q.unlock()

	j, leaseValid := q.leases[leaseID]
	obsLease := leaseID
	if !leaseValid {
		obsLease = ""
		if j = q.jobs[hash]; j == nil {
			return false, false, JobFailed, ErrUnknownJob
		}
	} else {
		delete(q.leases, leaseID)
		j.leaseID = ""
	}

	if j.state.Terminal() {
		// Another writer finished first; this payload is already dropped
		// (or byte-identical) in the content-addressed store.
		q.obs.UploadDuplicate(peer, j.hash, j.name, obsLease, now)
		return false, true, j.state, nil
	}

	if res.Status == sweep.StatusOK {
		if j.state == JobQueued {
			// A late upload beat the requeue; its fifo entry goes stale.
			q.queued--
			q.obs.JobDequeued()
		}
		j.state = JobDone
		j.peer = peer
		res.Spec, res.Hash = j.spec, j.hash
		if res.Attempts == 0 {
			res.Attempts = j.attempts
		}
		j.result = &res
		q.obs.JobDone(peer, j.hash, j.name, obsLease, res.Status, res.CacheHit, upload, res.Elapsed, now)
		q.noteTerminal(j, now)
		return true, false, j.state, nil
	}

	// Failed result.  Only a live lease can spend the attempt (a late
	// failure from an expired lease was already accounted by the expiry).
	if !leaseValid {
		return false, false, j.state, nil
	}
	if j.attempts < q.maxAttempts {
		j.state = JobQueued
		j.enqueuedNS = q.obs.Rel(now)
		q.fifo = append(q.fifo, j)
		q.queued++
		q.obs.JobRequeued(peer, j.hash, j.name, obsLease, j.attempts, now)
		q.wake()
		return true, false, j.state, nil
	}
	j.state = JobFailed
	res.Spec, res.Hash = j.spec, j.hash
	if res.Attempts == 0 {
		res.Attempts = j.attempts
	}
	j.result = &res
	q.obs.JobDone(peer, j.hash, j.name, obsLease, sweep.StatusFailed, false, upload, res.Elapsed, now)
	q.noteTerminal(j, now)
	return true, false, j.state, nil
}

// Release returns a leased-but-never-run job to the queue without
// charging the attempt — the drain path for local batch jobs the engine
// abandoned ("not run") when its context was cancelled.
func (q *Queue) Release(leaseID string, now time.Time) {
	q.lock()
	defer q.unlock()
	j, ok := q.leases[leaseID]
	if !ok || j.state != JobLeased {
		return
	}
	delete(q.leases, leaseID)
	j.leaseID = ""
	j.attempts--
	j.state = JobQueued
	j.enqueuedNS = q.obs.Rel(now)
	q.fifo = append(q.fifo, j)
	q.queued++
	q.obs.JobRequeued(j.peer, j.hash, j.name, leaseID, j.attempts, now)
	q.wake()
}

// ExpireLeases requeues (or terminally fails) every fleet lease whose
// heartbeat deadline passed.  force expires live leases too — the drain
// deadline's last resort.  It returns how many leases it closed.
func (q *Queue) ExpireLeases(now time.Time, force bool) int {
	q.lock()
	defer q.unlock()

	var expired []*job
	for _, j := range q.leases {
		if j.noExpiry {
			continue
		}
		if force || (!j.expiry.IsZero() && j.expiry.Before(now)) {
			expired = append(expired, j)
		}
	}
	sort.Slice(expired, func(a, b int) bool { return expired[a].leaseID < expired[b].leaseID })

	for _, j := range expired {
		lease := j.leaseID
		delete(q.leases, lease)
		j.leaseID = ""
		q.obs.LeaseExpired(j.peer, j.hash, j.name, lease, now)
		if j.state.Terminal() {
			// A dangling lease on a job a late upload already finished.
			continue
		}
		if j.attempts < q.maxAttempts {
			j.state = JobQueued
			j.enqueuedNS = q.obs.Rel(now)
			q.fifo = append(q.fifo, j)
			q.queued++
			q.obs.JobRequeued(j.peer, j.hash, j.name, "", j.attempts, now)
			q.wake()
			continue
		}
		j.state = JobFailed
		j.result = &sweep.JobResult{
			Spec: j.spec, Hash: j.hash, Status: sweep.StatusFailed,
			Attempts: j.attempts,
			Error:    fmt.Sprintf("lease expired: worker %s lost after %d attempts", j.peer, j.attempts),
		}
		q.obs.JobDone(j.peer, j.hash, j.name, "", sweep.StatusFailed, false, false, 0, now)
		q.noteTerminal(j, now)
	}
	return len(expired)
}

// noteTerminal fans a job's terminal transition out to every sweep that
// references it.  Exactly one execution is attributed: the sweep that
// enqueued the job (its first reference) counts copies-1 cache hits, and
// every other sweep's copies were satisfied without running anything, so
// they all count.  Callers hold the queue lock.
func (q *Queue) noteTerminal(j *job, now time.Time) {
	ok := j.state == JobDone
	for _, s := range j.sweeps {
		copies := s.copies[j.hash]
		s.open--
		done, cached, failed := 0, 0, 0
		if ok {
			done = copies
			cached = copies
			if !(j.result != nil && j.result.CacheHit) && s == j.sweeps[0] {
				cached = copies - 1
			}
		} else {
			failed = copies
		}
		q.obs.SweepProgress(s.id, done, cached, failed, s.open == 0, now)
	}
}

// QueuedLen reports how many jobs are waiting for a lease.
func (q *Queue) QueuedLen() int {
	q.lock()
	defer q.unlock()
	return q.queued
}

// FleetLeases reports how many expiring (fleet) leases are outstanding.
func (q *Queue) FleetLeases() int {
	q.lock()
	defer q.unlock()
	n := 0
	for _, j := range q.leases {
		if !j.noExpiry {
			n++
		}
	}
	return n
}

// SweepIDs lists submitted sweeps in submission order.
func (q *Queue) SweepIDs() []string {
	q.lock()
	defer q.unlock()
	return append([]string(nil), q.order...)
}

// View renders one sweep's dsre-serve-sweep/v1 document; withJobs
// includes the per-spec job table.
func (q *Queue) View(id string, withJobs bool) (SweepView, bool) {
	q.lock()
	defer q.unlock()
	s, ok := q.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	return q.viewLocked(s, withJobs), true
}

func (q *Queue) viewLocked(s *sweepRun, withJobs bool) SweepView {
	v := SweepView{
		Schema: SweepSchema, Sweep: s.id, Tenant: s.tenant, Trace: s.trace.String(),
		Total: len(s.specs), Unique: s.uniqueNew, Finished: s.open == 0,
	}
	first := map[string]bool{}
	for _, h := range s.hashes {
		j := q.jobs[h]
		executed := j.state == JobDone && j.result != nil && !j.result.CacheHit
		hit := false
		switch {
		case j.state == JobDone && !executed:
			hit = true // store replay: every copy is a hit
		case executed && (first[h] || s != j.sweeps[0]):
			hit = true // dedup copy, or another sweep ran the point
		}
		first[h] = true
		switch j.state {
		case JobDone:
			v.Done++
			if hit {
				v.CacheHits++
			}
		case JobFailed:
			v.Failed++
		case JobQueued, JobLeased:
		}
		if withJobs {
			jv := JobView{Hash: h, Name: j.name, State: j.state.String(), Attempts: j.attempts, CacheHit: hit}
			if j.result != nil {
				jv.Error = j.result.Error
			}
			v.Jobs = append(v.Jobs, jv)
		}
	}
	return v
}

// Manifest renders one sweep as a dsre-sweep-manifest/v1 document —
// byte-compatible with dsre-sweep's own output, so -resume and
// dsre-explain -manifest work on daemon sweeps unchanged.  Copies beyond
// the first of an executed point read as cache hits, exactly like the
// engine's in-sweep dedup.  When the sweep is unfinished, open jobs
// record as failed "not run" (the drain flush); finished reports whether
// that happened.
func (q *Queue) Manifest(id string) (*sweep.Manifest, bool, bool) {
	q.lock()
	defer q.unlock()
	s, ok := q.sweeps[id]
	if !ok {
		return nil, false, false
	}
	sum := &sweep.Summary{}
	first := map[string]bool{}
	for _, h := range s.hashes {
		j := q.jobs[h]
		var r sweep.JobResult
		switch {
		case j.state.Terminal() && j.result != nil:
			r = *j.result
			if j.state == JobDone && !r.CacheHit && (first[h] || s != j.sweeps[0]) {
				r.CacheHit = true
				r.Elapsed = 0
			}
		default:
			r = sweep.JobResult{
				Spec: j.spec, Hash: h, Status: sweep.StatusFailed,
				Error: fmt.Sprintf("not run: daemon drained while %s", j.state),
			}
		}
		first[h] = true
		r.Report = nil
		sum.Jobs = append(sum.Jobs, r)
		switch r.Status {
		case sweep.StatusOK:
			sum.OK++
			if r.CacheHit {
				sum.CacheHits++
			}
		default:
			sum.Failed++
		}
	}
	return sweep.NewManifest(sum), s.open == 0, true
}

// Trace returns one sweep's trace ID.
func (q *Queue) Trace(id string) (tracing.TraceID, bool) {
	q.lock()
	defer q.unlock()
	s, ok := q.sweeps[id]
	if !ok {
		return tracing.TraceID{}, false
	}
	return s.trace, true
}

// Finished reports whether the sweep exists and has no open jobs.
func (q *Queue) Finished(id string) (bool, bool) {
	q.lock()
	defer q.unlock()
	s, ok := q.sweeps[id]
	if !ok {
		return false, false
	}
	return s.open == 0, true
}
