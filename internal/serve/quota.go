package serve

import (
	"sync"
	"time"
)

// Quotas is a per-tenant token bucket over submitted job specs: each
// tenant accrues Rate tokens per second up to Burst, and a submit of N
// specs spends N tokens or is rejected with a retry hint.  A Rate of zero
// disables quotas entirely.
type Quotas struct {
	Rate  float64 // tokens (specs) per second per tenant
	Burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas builds a quota table.  A non-positive rate disables quotas; a
// non-positive burst defaults to one second of rate.
func NewQuotas(rate float64, burst float64) *Quotas {
	if burst <= 0 {
		burst = rate
	}
	return &Quotas{Rate: rate, Burst: burst, buckets: map[string]*bucket{}}
}

// Allow spends n tokens from tenant's bucket.  When the bucket is short it
// reports false with the wait until n tokens will have accrued (capped at
// the burst horizon).
func (q *Quotas) Allow(tenant string, n int, now time.Time) (bool, time.Duration) {
	if q == nil || q.Rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.Burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.Rate
		if b.tokens > q.Burst {
			b.tokens = q.Burst
		}
	}
	b.last = now
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	short := need - b.tokens
	if short > q.Burst {
		short = q.Burst
	}
	return false, time.Duration(short / q.Rate * float64(time.Second))
}
