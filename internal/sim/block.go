package sim

import (
	"repro/internal/core"
	"repro/internal/isa"
)

// instState is the dynamic state of one instruction slot in a mapped block:
// a DSRE reservation station.
type instState struct {
	slots [isa.NumSlots]core.OperandSlot

	// needExec marks that the instruction must (re-)execute: an operand
	// changed since the last execution (or it has never executed).
	needExec bool
	// inflight counts executions currently in the ALU pipeline; commit-only
	// emission must wait for quiescence or it would certify a stale output.
	inflight int
	// queued marks membership in a tile ready queue.
	queued bool
	// fired counts executions (re-executions are fired > 1).
	fired int64
	// lastOut and outTag describe the most recent output broadcast.
	lastOut   int64
	outTag    core.Tag
	execValid bool

	// committedSent marks that the final (committed) output was emitted.
	committedSent bool
	// nullTag is the newest predicate tag for which a store-null was sent.
	nullTag      core.Tag
	nullSent     bool
	nullCommSent bool
	// storeCommitCounted dedups this store's contribution to the block's
	// committed-store count.
	storeCommitCounted bool
	// sentAddrCom/sentDataCom dedup partial store-commit messages.
	sentAddrCom bool
	sentDataCom bool
	// Value prediction state (loads only): the value speculatively
	// broadcast at map time, and a training dedup flag.
	vpValid   bool
	vpTrained bool
	vpValue   int64
}

// storeCommitFlags reports whether the commit wave has reached a store's
// address and data operands (the predicate, when present, gates both).
func (st *instState) storeCommitFlags(in *isa.Inst) (addrCom, dataCom bool) {
	predOK := in.Pred == isa.PredNone || st.slots[isa.SlotP].Committed
	return predOK && st.slots[isa.SlotA].Committed, predOK && st.slots[isa.SlotB].Committed
}

// inputsCommitted reports whether every operand slot the instruction waits
// on holds a committed value.
func (st *instState) inputsCommitted(in *isa.Inst) bool {
	for s := isa.SlotA; s < isa.NumSlots; s++ {
		if in.NeedsSlot(s) && !st.slots[s].Committed {
			return false
		}
	}
	return true
}

// operandsPresent reports whether every needed slot holds a value.
func (st *instState) operandsPresent(in *isa.Inst) bool {
	for s := isa.SlotA; s < isa.NumSlots; s++ {
		if in.NeedsSlot(s) && !st.slots[s].Present {
			return false
		}
	}
	return true
}

// predEnabled reports the predicate check: ok is false while the predicate
// has not arrived.
func (st *instState) predEnabled(in *isa.Inst) (enabled, ok bool) {
	if in.Pred == isa.PredNone {
		return true, true
	}
	p := &st.slots[isa.SlotP]
	if !p.Present {
		return false, false
	}
	truth := p.Value != 0
	return (in.Pred == isa.PredTrue) == truth, true
}

// writeState is one register write slot of a mapped block, physically
// homed at a register tile.
type writeState struct {
	slot    core.OperandSlot
	counted bool // contributed to writesCommitted
}

// blockInst is one in-flight dynamic block.
type blockInst struct {
	seq     int64
	blockID int
	bdef    *isa.Block
	frame   int
	gen     uint32

	insts  []instState
	writes []writeState

	// branch is the block's control outcome (value = next block ID),
	// written by whichever branch instruction fires.
	branch        core.OperandSlot
	branchCounted bool

	// readBind maps each register read slot to the producing older block's
	// sequence number, or -1 for the architectural register file.
	readBind []int64
	// regRead maps register number -> read slot index, for producer pushes.
	regRead map[uint8]int

	writesCommitted int
	storesCommitted int
	numStores       int
	predictedNext   int   // what fetch predicted would follow (for stats)
	mapCycle        int64 // cycle the block was mapped, for residency spans
}

// outputsCommitted reports whether the block's architectural outputs are
// all final: branch, register writes and stores (or their null tokens).
func (b *blockInst) outputsCommitted() bool {
	return b.branch.Committed &&
		b.writesCommitted == len(b.writes) &&
		b.storesCommitted == b.numStores
}
