package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RecordSchema identifies the on-disk job-record wire format.
const RecordSchema = "dsre-sweep-record/v1"

// Record is one cached job result: the spec that produced it, the stamps
// that scope its validity, and the dsre-report/v1 payload.  PayloadSHA256
// is the hex SHA-256 of the report's canonical JSON, sealed at Put time and
// re-verified on every Get, so a flipped bit on disk (or a corrupted object
// served by a remote store) reads as a miss instead of a wrong result.
type Record struct {
	Schema        string            `json:"schema"`
	Hash          string            `json:"hash"`
	SimVersion    string            `json:"sim_version"`
	PayloadSHA256 string            `json:"payload_sha256,omitempty"`
	Spec          JobSpec           `json:"spec"`
	Report        *telemetry.Report `json:"report"`
}

// payloadSHA256 computes the integrity hash over the report's canonical
// JSON encoding (struct field order is fixed and map keys sort, so the
// encoding is deterministic).
func payloadSHA256(rep *telemetry.Report) (string, error) {
	data, err := json.Marshal(rep)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Seal stamps the record's schema, simulator version and payload integrity
// hash.  Put calls it; remote writers (the fleet upload path) call it
// before shipping so the receiving store can verify without trust.
func (rec *Record) Seal() error {
	rec.Schema = RecordSchema
	rec.SimVersion = sim.Version
	sum, err := payloadSHA256(rec.Report)
	if err != nil {
		return fmt.Errorf("sweep: seal %s: %w", rec.Hash, err)
	}
	rec.PayloadSHA256 = sum
	return nil
}

// VerifyPayload recomputes the payload hash and reports whether it matches
// the sealed stamp.  An unsealed record (no stamp) never verifies: integrity
// is opt-out only by recomputing the result.
func (rec *Record) VerifyPayload() error {
	if rec.PayloadSHA256 == "" {
		return fmt.Errorf("sweep: record %s has no payload hash", rec.Hash)
	}
	sum, err := payloadSHA256(rec.Report)
	if err != nil {
		return err
	}
	if sum != rec.PayloadSHA256 {
		return fmt.Errorf("sweep: record %s payload hash %s, sealed %s", rec.Hash, sum, rec.PayloadSHA256)
	}
	return nil
}

// Store is a content-addressed result cache: records are keyed by their
// spec hash, writes are first-write-wins (an object once written never
// changes), and every read path treats a missing, stale-versioned or
// corrupt record as a miss (nil, nil) — never an error — because the engine
// can always recompute a content-addressed key.  DirStore is the local
// on-disk implementation; serve.RemoteStore speaks the same contract to a
// dsre-serve daemon over HTTP.
type Store interface {
	// Get loads the record for a hash; (nil, nil) is a miss.
	Get(hash string) (*Record, error)
	// Put stores a record under its hash; an existing object wins.
	Put(rec *Record) error
}

// DirStore is the local-directory Store: each record lives at
// <dir>/objects/<hash[:2]>/<hash>.json.  Writes are atomic (temp file +
// rename) and first-write-wins, so concurrent sweeps — or a daemon plus a
// worker fleet — sharing a cache directory are safe and cached payloads are
// byte-stable.
type DirStore struct {
	dir string

	// onCorrupt, when set, observes every record rejected by payload
	// verification (the structured store_corrupt event).  Verification
	// failures are still just misses; the hook is observability, not
	// control flow.
	onCorrupt func(hash, detail string)
}

// OpenStore opens (creating if needed) a cache rooted at dir.
func OpenStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *DirStore) Dir() string { return st.dir }

// SetOnCorrupt installs the corruption observer (engine.New wires it to the
// sweep observer's store_corrupt event when observability is on).  Not safe
// to call concurrently with Get; install before use.
func (st *DirStore) SetOnCorrupt(fn func(hash, detail string)) { st.onCorrupt = fn }

func (st *DirStore) objectPath(hash string) string {
	return filepath.Join(st.dir, "objects", hash[:2], hash+".json")
}

// Get loads the record for a hash.  A missing, unreadable, corrupt or
// stale-versioned record is a cache miss (nil, nil), never an error: the
// engine recomputes and overwrites, which is always safe for a
// content-addressed key.  A record whose payload fails SHA-256
// verification additionally reports through the OnCorrupt hook.
func (st *DirStore) Get(hash string) (*Record, error) {
	if len(hash) < 2 {
		return nil, fmt.Errorf("sweep: malformed hash %q", hash)
	}
	data, err := os.ReadFile(st.objectPath(hash))
	if err != nil {
		return nil, nil
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, nil
	}
	if rec.Schema != RecordSchema || rec.Hash != hash || rec.SimVersion != sim.Version || rec.Report == nil {
		return nil, nil
	}
	if err := rec.VerifyPayload(); err != nil {
		if st.onCorrupt != nil {
			st.onCorrupt(hash, err.Error())
		}
		return nil, nil
	}
	return &rec, nil
}

// Put stores a record under its hash.  An existing object is left
// untouched (its bytes are already the content the hash names), so a
// record once written never changes on disk.
func (st *DirStore) Put(rec *Record) error {
	if len(rec.Hash) < 2 {
		return fmt.Errorf("sweep: malformed hash %q", rec.Hash)
	}
	if err := rec.Seal(); err != nil {
		return err
	}
	path := st.objectPath(rec.Hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal %s: %w", rec.Hash, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+rec.Hash+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	return nil
}

// Len counts the objects in the store (for tests and the CLI's summary).
func (st *DirStore) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(st.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
