// Custom kernel: build your own EDGE program with the block-builder API,
// run it through the golden-model emulator and the cycle simulator, and
// watch DSRE repair the mis-speculations it provokes.
//
// The kernel is a deliberately nasty pointer-through-memory loop: a cursor
// lives *in memory* and every iteration loads it, advances it, and stores
// it back — so every load truly depends on the previous iteration's store.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/sim"
)

const (
	cursorAddr = 0x1000   // the in-memory cursor
	arrayBase  = 0x100000 // data the cursor walks over
	resultAddr = 0x2000
	elems      = 512
)

func buildProgram() *isa.Program {
	b := program.New("cursor-walk")

	loop := b.NewBlock("loop")
	sum := loop.Read(2)
	curp := loop.Const(cursorAddr)
	cursor := loop.Load(curp, 0)            // load the in-memory cursor
	v := loop.Load(cursor, 0)               // load the element it points at
	sum = loop.Op(isa.OpAdd, sum, v)        // accumulate
	next := loop.Op(isa.OpAdd, cursor, loop.Const(8))
	loop.Store(curp, 0, next)               // store the advanced cursor
	loop.Write(2, sum)
	end := loop.Const(arrayBase + 8*elems)
	more := loop.Op(isa.OpTltu, next, end)
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(2)
	done.Store(done.Const(resultAddr), 0, res)
	done.Halt()

	return b.MustBuild()
}

func main() {
	prog := buildProgram()
	fmt.Println(prog)

	// Initial state: the cursor points at the array; the array holds 1..N.
	m := mem.New()
	m.Write(cursorAddr, arrayBase, 8)
	var want int64
	for i := 0; i < elems; i++ {
		m.Write(arrayBase+uint64(8*i), int64(i+1), 8)
		want += int64(i + 1)
	}
	var regs [isa.NumRegs]int64

	golden, err := emu.Run(prog, &regs, m, emu.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden model: sum = %d (want %d), %d blocks, %d instructions\n\n",
		golden.Mem.Read(resultAddr, 8), want, golden.Blocks, golden.Insts)

	for _, recovery := range []core.RecoveryScheme{core.RecoverFlush, core.RecoverDSRE} {
		cfg := sim.DefaultConfig()
		cfg.Policy = core.IssueAggressive
		cfg.Recovery = recovery
		mc, err := sim.New(cfg, prog, &regs, m, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		r, err := mc.Run()
		if err != nil {
			log.Fatal(err)
		}
		if got := r.Mem.Read(resultAddr, 8); got != want {
			log.Fatalf("%s: wrong sum %d (protocol bug!)", recovery, got)
		}
		fmt.Printf("aggressive + %-5s : IPC %.3f, %d violations, %d flushes, %d selective corrections\n",
			recovery, float64(golden.Insts)/float64(r.Stats.Cycles),
			r.Stats.LSQ.Violations, r.Stats.Flushes, r.Stats.DSRECorrections)
	}
	fmt.Println("\nEvery iteration's cursor load aliases the previous iteration's store,")
	fmt.Println("so aggressive issue mis-speculates constantly; DSRE repairs each one by")
	fmt.Println("re-executing only the dependent slice instead of flushing the window.")
}
