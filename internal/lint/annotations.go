package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const annotationsName = "annotations"

// knownAnnotations maps every recognised //lint:<name> escape to the
// analyzer it silences.  An escape must carry a justification after the
// name; the annotation audit reports escapes with no justification, escapes
// that suppress nothing (stale), and unknown names (typos would otherwise
// silently fail to suppress).
var knownAnnotations = map[string]bool{
	"ordered":     true, // determinism: map iteration is order-independent or normalised
	"lockcheck":   true, // lockcheck: guarded-field access outside the lock is safe here
	"atomiccheck": true, // atomiccheck: plain access to an atomic field is safe here
	"ctxcheck":    true, // ctxcheck: this blocking loop terminates without cancellation
}

func knownAnnotationNames() string {
	names := make([]string, 0, len(knownAnnotations))
	for n := range knownAnnotations {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// annotation is one //lint:<name> comment with its justification text.
type annotation struct {
	name          string
	justification string
	pos           token.Pos
	line          int
	used          bool // an analyzer suppressed a finding with it
}

// parseAnnotations extracts every //lint: comment of a file, in position
// order.
func parseAnnotations(fset *token.FileSet, f *ast.File) []*annotation {
	var anns []*annotation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments are not annotation carriers
			}
			rest, ok := strings.CutPrefix(strings.TrimSpace(body), "lint:")
			if !ok {
				continue
			}
			i := 0
			for i < len(rest) && (rest[i] >= 'a' && rest[i] <= 'z' || rest[i] == '_') {
				i++
			}
			just := strings.TrimLeft(rest[i:], " \t")
			just = strings.TrimSpace(strings.TrimLeft(just, "—–:-"))
			anns = append(anns, &annotation{
				name:          rest[:i],
				justification: just,
				pos:           c.Pos(),
				line:          fset.Position(c.Pos()).Line,
			})
		}
	}
	return anns
}

// annotationsFor returns the annotations named name in f and registers the
// (file, name) pair as consulted: after every analyzer has run, the
// annotation audit reports unjustified, stale and unknown annotations in
// consulted files (and only there, so decorative mentions of an annotation
// in unaudited packages are not misread as escapes).
func (p *pass) annotationsFor(f *ast.File, name string) []*annotation {
	if p.annFiles == nil {
		p.annFiles = make(map[*ast.File][]*annotation)
		p.annConsulted = make(map[*ast.File]map[string]bool)
	}
	anns, ok := p.annFiles[f]
	if !ok {
		anns = parseAnnotations(p.mod.Fset, f)
		p.annFiles[f] = anns
	}
	set := p.annConsulted[f]
	if set == nil {
		set = make(map[string]bool)
		p.annConsulted[f] = set
	}
	set[name] = true
	var out []*annotation
	for _, a := range anns {
		if a.name == name {
			out = append(out, a)
		}
	}
	return out
}

// suppressed reports whether an annotation sits on line or the line directly
// above, marking it used.  Suppression works even when the justification is
// empty — the audit still demands the justification separately, so an
// escape can never be both silent and undocumented.
func suppressed(anns []*annotation, line int) bool {
	hit := false
	for _, a := range anns {
		if a.line == line || a.line == line-1 {
			a.used = true
			hit = true
		}
	}
	return hit
}

// annotationAudit runs after every analyzer and reports the annotation
// hygiene diagnostics for all consulted files.
func annotationAudit(p *pass) {
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			consulted := p.annConsulted[f]
			if consulted == nil {
				continue
			}
			for _, a := range p.annFiles[f] {
				if !knownAnnotations[a.name] {
					p.reportf(annotationsName, a.pos,
						"unknown annotation //lint:%s (known: %s)", a.name, knownAnnotationNames())
					continue
				}
				if !consulted[a.name] {
					continue // a different analyzer's escape; not audited here
				}
				if a.justification == "" {
					p.reportf(annotationsName, a.pos,
						"//lint:%s needs a justification — write //lint:%s — <why this is safe>", a.name, a.name)
				}
				if !a.used {
					p.reportf(annotationsName, a.pos,
						"stale //lint:%s annotation — it suppresses no finding; delete it", a.name)
				}
			}
		}
	}
}
