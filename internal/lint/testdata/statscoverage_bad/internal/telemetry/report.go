package telemetry

// Report flattens a single counter instead of carrying sim.Stats wholesale.
// want: no field of type sim.Stats
type Report struct {
	Schema string `json:"schema"`
	Cycles int64  `json:"cycles"`
}
