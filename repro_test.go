package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestRunDefaults(t *testing.T) {
	r, err := repro.Run(repro.Config{Workload: "vecsum", Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "dsre" {
		t.Errorf("default scheme = %q", r.Scheme)
	}
	if r.IPC <= 0 || r.Cycles <= 0 || r.Insts <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := repro.Run(repro.Config{}); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := repro.Run(repro.Config{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := repro.Run(repro.Config{Workload: "vecsum", Scheme: "nope"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range repro.Schemes() {
		if _, _, err := repro.ParseScheme(s); err != nil {
			t.Errorf("ParseScheme(%q): %v", s, err)
		}
	}
	if _, _, err := repro.ParseScheme("bogus"); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("err = %v", err)
	}
}

func TestWorkloadsListed(t *testing.T) {
	ws := repro.Workloads()
	if len(ws) < 10 {
		t.Fatalf("only %d workloads registered", len(ws))
	}
	for _, w := range ws {
		if repro.WorkloadAnalog(w) == "" {
			t.Errorf("%s: no SPEC analog documented", w)
		}
	}
}

// TestEverySchemeEveryKernelViaFacade is the public-API version of the
// correctness matrix: Run itself verifies architectural state against the
// golden model, so success here means recovery was exact.
func TestEverySchemeEveryKernelViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	for _, w := range repro.Workloads() {
		size := 64
		if w == "matmul" {
			size = 8
		}
		for _, s := range repro.Schemes() {
			if _, err := repro.Run(repro.Config{Workload: w, Scheme: s, Size: size}); err != nil {
				t.Errorf("%s/%s: %v", w, s, err)
			}
		}
	}
}

func TestConfigKnobsChangeTiming(t *testing.T) {
	base, err := repro.Run(repro.Config{Workload: "vecsum", Size: 512})
	if err != nil {
		t.Fatal(err)
	}
	slowNet, err := repro.Run(repro.Config{Workload: "vecsum", Size: 512, HopLatency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if slowNet.Cycles <= base.Cycles {
		t.Errorf("hop latency 4 (%d cycles) not slower than 1 (%d cycles)", slowNet.Cycles, base.Cycles)
	}
	smallWin, err := repro.Run(repro.Config{Workload: "vecsum", Size: 512, Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	if smallWin.Cycles <= base.Cycles {
		t.Errorf("2 frames (%d cycles) not slower than 8 (%d cycles)", smallWin.Cycles, base.Cycles)
	}
}
