package sim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Result is the outcome of a simulated run.
type Result struct {
	Regs   [isa.NumRegs]int64
	Mem    *mem.Memory
	Blocks int64
	Stats  Stats
}

// ctxCheckInterval is how often RunContext polls its context, in cycles.
// A power of two so the hot loop pays one AND plus a rarely-taken branch;
// at simulator speeds a few thousand cycles resolve in well under a
// millisecond, so cancellation still lands at what a caller perceives as
// "a cycle boundary, immediately".
const ctxCheckInterval = 4096

// Run simulates to completion (the committed halt branch) and returns the
// final architectural state and statistics.
func (mc *Machine) Run() (*Result, error) {
	return mc.RunContext(context.Background())
}

// RunContext is Run under a context: a sweep timeout or Ctrl-C cancels the
// simulation at a cycle boundary, returning the context's error.  The
// context is polled every ctxCheckInterval cycles (never in the per-cycle
// hot path), and not at all for contexts that cannot be cancelled.
func (mc *Machine) RunContext(ctx context.Context) (*Result, error) {
	maxCycles := mc.cfg.maxCycles()
	deadlock := mc.cfg.deadlockCycles()
	cancellable := ctx != nil && ctx.Done() != nil
	for !mc.done {
		if mc.err != nil {
			return nil, fmt.Errorf("cycle %d: %w", mc.cycle, mc.err)
		}
		if mc.cycle >= maxCycles {
			return nil, fmt.Errorf("sim: cycle budget %d exhausted (%d blocks committed)", maxCycles, mc.committed)
		}
		if mc.cycle-mc.lastCommitCycle > deadlock {
			return nil, fmt.Errorf("sim: no commit for %d cycles at cycle %d — protocol deadlock\n%s",
				deadlock, mc.cycle, mc.debugDump())
		}
		if cancellable && mc.cycle&(ctxCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at cycle %d: %w", mc.cycle, err)
			}
		}
		if mc.step() || mc.cfg.SlowTick {
			continue
		}
		// The cycle just stepped was a provable no-op, and nothing outside
		// the event structures can change until the next scheduled event:
		// jump straight to it instead of replaying empty cycles.
		mc.fastForward(maxCycles, deadlock)
	}
	// Flush the final (partial) telemetry window so short runs still
	// produce at least one sample.
	if mc.sampleSink != nil && mc.cycle > mc.sampleBase.cycle {
		mc.takeSample()
	}
	mc.snapshotStats()
	return &Result{Regs: mc.arch, Mem: mc.mem, Blocks: mc.committed, Stats: mc.stats}, nil
}

// step advances the machine one cycle and reports whether anything moved.
// A false return is a proof obligation, not a hint: it asserts the cycle
// was a no-op AND that replaying the machine from here produces only no-ops
// until the next scheduled event (see fastForward), because every state
// change is initiated by an injection, a network delivery, an LSQ
// re-evaluation, a tile completion/issue, fetch, or commit — all of which
// report below.
func (mc *Machine) step() bool {
	progress := false

	// Structure-latency completions (cache replies, recovery broadcasts)
	// inject into the network first.  FIFO within a cycle — the heap's
	// insertion-sequence tiebreak — preserves the retired map's append
	// order.
	for mc.injq.Len() > 0 && mc.injq.MinAt() <= mc.cycle {
		_, inj := mc.injq.Pop()
		mc.send(inj.src, inj.dst, inj.msg)
		progress = true
	}

	// Network: arrivals dispatch to the handlers.
	if mc.net.Tick(mc.cycle) {
		progress = true
	}

	// LSQ: deferred loads whose policy wait resolved, and loads whose
	// values became certifiable (the memory leg of the commit wave).  A
	// re-evaluation scan counts as progress even when it returns nothing:
	// it can increment deferral statistics (MSHR-parked loads retry every
	// cycle) and clears queue dirtiness.
	if mc.q.HasReadyWork() {
		progress = true
	}
	mc.readyBuf = mc.q.TakeReady(mc.cycle, mc.readyBuf[:0])
	for _, rl := range mc.readyBuf {
		b := mc.blockAt(rl.Load.Seq)
		if b == nil {
			continue
		}
		idx := mc.memIdx[b.blockID][rl.Load.LSID]
		mc.emitLoadResult(b, idx, rl.Addr, rl.Res)
	}
	mc.certBuf = mc.q.TakeCertifiable(mc.certBuf[:0])
	if len(mc.certBuf) > 0 {
		progress = true
	}
	for _, c := range mc.certBuf {
		b := mc.blockAt(c.Load.Seq)
		if b == nil {
			continue
		}
		idx := mc.memIdx[b.blockID][c.Load.LSID]
		mc.broadcastLoadReply(b, idx, c.Addr, c.Value, 0, mc.cfg.ForwardLatency, true)
	}

	if mc.stepTiles() {
		progress = true
	}
	mc.lastFetch = mc.stepFetch()
	if mc.lastFetch == fetchProgress {
		progress = true
	}
	if mc.stepCommit() {
		progress = true
	}
	// Sample before accounting this cycle's slot so a window ending at
	// cycle c covers exactly the accounted cycles (base, c]: windowed CPI
	// buckets then sum to Window × SlotsPerCycle with no boundary skew.
	if mc.sampleSink != nil && mc.cycle >= mc.sampleAt {
		mc.takeSample()
	}
	if mc.acct != nil {
		mc.accountCycle()
	}
	mc.cycle++
	return progress
}

// fastForward advances mc.cycle to the next cycle at which anything can
// happen, after step returned false.  The jump target is the earliest of
// every pending event source, clamped so the run loop still observes the
// max-cycle and deadlock boundaries and the sampler still closes windows at
// exact multiples:
//
//   - the next scheduled injection (injq);
//   - the next network arrival or transmission (NextEvent);
//   - the next ALU completion (tileNext; ready queues are empty after a
//     null step, else it refuses to jump);
//   - fetch completion (fetch.readyAt) when a fetch is in flight;
//   - the first cycle the deadlock detector would fire, and maxCycles;
//   - the next sampler window boundary.
//
// Skipped cycles are not free of side effects: a stalled fetch engine
// increments its stall counter every cycle, the sampler may close a window,
// and cycle accounting attributes every cycle's slots.  With accounting on
// the cycles are replayed individually (tickIdleTail); otherwise the stall
// counters are advanced in bulk, which is exactly what replaying would do.
func (mc *Machine) fastForward(maxCycles, deadlock int64) {
	next := mc.lastCommitCycle + deadlock + 1
	if maxCycles < next {
		next = maxCycles
	}
	if mc.injq.Len() > 0 && mc.injq.MinAt() < next {
		next = mc.injq.MinAt()
	}
	if ne := mc.net.NextEvent(mc.cycle); ne < next {
		next = ne
	}
	if tn := mc.tileNext(); tn < next {
		next = tn
	}
	if mc.fetch.active && mc.fetch.readyAt < next {
		next = mc.fetch.readyAt
	}
	if mc.sampleSink != nil && mc.sampleAt < next {
		next = mc.sampleAt
	}
	if next <= mc.cycle {
		return
	}
	mc.ffSkipped += next - mc.cycle
	if mc.acct != nil {
		for mc.cycle < next {
			mc.tickIdleTail()
		}
		return
	}
	switch mc.lastFetch {
	case fetchStallFrames:
		mc.stats.FetchStallFrames += next - mc.cycle
	case fetchStallLSQ:
		mc.stats.FetchStallLSQ += next - mc.cycle
	default:
		// fetchIdle and fetchWaiting move no counters; fetchProgress cannot
		// follow a null step.
	}
	mc.cycle = next
}

// tickIdleTail replays the per-cycle tail of a skipped idle cycle: the
// fetch engine's stall counter (the only statistic a null cycle moves),
// then the sampler boundary check, then cycle accounting — the same order
// step uses, so windows and CPI stacks close over identical state.
func (mc *Machine) tickIdleTail() {
	switch mc.lastFetch {
	case fetchStallFrames:
		mc.stats.FetchStallFrames++
	case fetchStallLSQ:
		mc.stats.FetchStallLSQ++
	default:
		// fetchIdle and fetchWaiting move no counters; fetchProgress cannot
		// follow a null step.
	}
	if mc.sampleSink != nil && mc.cycle >= mc.sampleAt {
		mc.takeSample()
	}
	if mc.acct != nil {
		mc.accountCycle()
	}
	mc.cycle++
}

// debugDump renders the stuck machine for deadlock diagnostics.  The
// sampler's partial window is flushed first so the telemetry line below
// reflects the moment of the dump, and the flight recorder (when
// accounting is on) appends the last recorded cycles.
func (mc *Machine) debugDump() string {
	if mc.sampleSink != nil && mc.cycle > mc.sampleBase.cycle {
		mc.takeSample()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "window (%d blocks):\n", len(mc.window))
	for _, blk := range mc.window {
		fmt.Fprintf(&b, "  seq=%d block=%d %q branch{p=%v c=%v v=%d} writes=%d/%d stores=%d/%d\n",
			blk.seq, blk.blockID, blk.bdef.Name,
			blk.branch.Present, blk.branch.Committed, blk.branch.Value,
			blk.writesCommitted, len(blk.writes), blk.storesCommitted, blk.numStores)
		for i := range blk.insts {
			st := &blk.insts[i]
			in := &blk.bdef.Insts[i]
			if st.committedSent {
				continue
			}
			var slots []string
			for s := isa.SlotA; s < isa.NumSlots; s++ {
				if in.NeedsSlot(s) {
					sl := blk.slot(i, s)
					slots = append(slots, fmt.Sprintf("%s{p=%v c=%v v=%d t=%d}", s, sl.Present, sl.Committed, sl.Value, sl.Tag))
				}
			}
			fmt.Fprintf(&b, "    i%-3d %-24s fired=%d need=%v q=%v ev=%v %s\n",
				i, in.String(), st.fired, blk.need.Test(i), blk.queued.Test(i), st.execValid, strings.Join(slots, " "))
		}
	}
	fmt.Fprintf(&b, "fetch active=%v seq=%d id=%d  nextSeq=%d resume=%d net pending=%d\n",
		mc.fetch.active, mc.fetch.seq, mc.fetch.blockID, mc.nextSeq, mc.resumeID, mc.net.Pending())
	if mc.ffSkipped > 0 {
		// A deadlocked machine reaches the detector almost entirely through
		// fast-forwarded idle cycles; note them so "cycle N" in the error is
		// not mistaken for N stepped cycles of activity.
		fmt.Fprintf(&b, "idle-skipped=%d cycles fast-forwarded (injq=%d net-next=%d tile-next=%d)\n",
			mc.ffSkipped, mc.injq.Len(), mc.net.NextEvent(mc.cycle), mc.tileNext())
	}
	if mc.haveSample {
		s := mc.lastSample
		fmt.Fprintf(&b, "telemetry last window: cycle=%d win=%d ipc=%.3f committed=%d inflight=%d lsq=%d noc=%d waves=%d reexecs=%d flushes=%d l1d=%.3f l2=%.3f\n",
			s.Cycle, s.Window, s.IPC, s.CommittedBlocks, s.InFlightBlocks,
			s.LSQOccupancy, s.NoCPending, s.Waves, s.Reexecs, s.Flushes,
			s.L1DMissRate, s.L2MissRate)
	}
	if mc.acct != nil {
		fmt.Fprintf(&b, "cycle accounting: %s\n", mc.acct.stack.String())
		b.WriteString(mc.acct.flight.Dump())
	}
	return b.String()
}

// Cycle returns the current cycle (for tests and tools).
func (mc *Machine) Cycle() int64 { return mc.cycle }
