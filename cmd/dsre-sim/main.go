// dsre-sim runs one workload on the simulated EDGE machine and prints the
// run's statistics.  Every run is verified against the architectural
// emulator before results are reported.
//
// Usage:
//
//	dsre-sim -workload histogram -scheme dsre
//	dsre-sim -workload bank -scheme storeset+flush -frames 16 -size 8192
//	dsre-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var cfg repro.Config
	list := flag.Bool("list", false, "list workloads and schemes, then exit")
	all := flag.Bool("all-schemes", false, "run every scheme on the workload")
	flag.StringVar(&cfg.Workload, "workload", "", "kernel to run (see -list)")
	flag.StringVar(&cfg.Scheme, "scheme", "dsre", "speculation scheme (see -list)")
	flag.IntVar(&cfg.Size, "size", 0, "workload size (0 = default)")
	flag.IntVar(&cfg.Unroll, "unroll", 0, "iterations per block (0 = default)")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	flag.IntVar(&cfg.Frames, "frames", 0, "in-flight blocks (0 = default 8)")
	flag.IntVar(&cfg.HopLatency, "hop", 0, "mesh hop latency (0 = default 1)")
	flag.IntVar(&cfg.MemLatency, "memlat", 0, "DRAM latency (0 = default 100)")
	flag.BoolVar(&cfg.CommitTokensFree, "free-commit", false, "commit tokens bypass the network")
	flag.BoolVar(&cfg.NoSuppressIdentical, "no-suppress", false, "disable identical-value wave suppression")
	flag.BoolVar(&cfg.PerfectBlockPred, "perfect-bp", false, "perfect next-block prediction")
	flag.StringVar(&cfg.BlockPredictor, "bpred", "", "next-block predictor: twolevel, last, perfect")
	flag.StringVar(&cfg.Placement, "placement", "", "instruction placement: roundrobin, chain")
	flag.IntVar(&cfg.DTileBanks, "dbanks", 0, "D-tile memory ports (0 = default)")
	flag.IntVar(&cfg.LSQCapacity, "lsqcap", 0, "LSQ entry capacity (0 = unbounded)")
	flag.BoolVar(&cfg.ValuePredict, "vp", false, "stride load-value prediction (repaired by DSRE waves)")
	timeline := flag.Bool("timeline", false, "render an execution timeline and wave report")
	flag.Parse()
	cfg.Seed = *seed

	if *list {
		fmt.Println("workloads:")
		for _, w := range repro.Workloads() {
			fmt.Printf("  %-10s %s\n", w, repro.WorkloadAnalog(w))
		}
		fmt.Printf("schemes: %s\n", strings.Join(repro.Schemes(), ", "))
		return
	}
	if cfg.Workload == "" {
		fmt.Fprintln(os.Stderr, "dsre-sim: -workload required (try -list)")
		os.Exit(2)
	}

	schemes := []string{cfg.Scheme}
	if *all {
		schemes = repro.Schemes()
	}
	cfg.Trace = *timeline
	for _, s := range schemes {
		cfg.Scheme = s
		res, err := repro.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsre-sim: %v\n", err)
			os.Exit(1)
		}
		report(res)
		if res.Trace != nil {
			fmt.Print(res.Trace.Timeline(72))
			fmt.Print(res.Trace.WaveReport(5))
		}
	}
}

func report(r *repro.Result) {
	fmt.Printf("== %s / %s ==\n", r.Workload, r.Scheme)
	fmt.Printf("  IPC %.3f  (%d instructions over %d cycles, %d blocks)\n",
		r.IPC, r.Insts, r.Cycles, r.Blocks)
	fmt.Printf("  violations %d  flushes %d  corrections %d  waves %d  re-execs %d\n",
		r.Violations, r.Flushes, r.Corrections, r.Waves, r.Reexecs)
	fmt.Printf("  verified against the architectural emulator: OK\n")
	fmt.Printf("%s\n", indent(r.Sim.String(), "  "))
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}
