package program

import (
	"fmt"

	"repro/internal/isa"
)

// fanTree reduces a consumer list to at most isa.MaxTargets entries by
// inserting mov instructions, appended to *movs in parent-first order.
func fanTree(consumers []consRef, movs *[]*node) []consRef {
	if len(consumers) <= isa.MaxTargets {
		return consumers
	}
	per := (len(consumers) + isa.MaxTargets - 1) / isa.MaxTargets
	var out []consRef
	for i := 0; i < len(consumers); i += per {
		end := i + per
		if end > len(consumers) {
			end = len(consumers)
		}
		chunk := consumers[i:end]
		if len(chunk) == 1 {
			out = append(out, chunk[0])
			continue
		}
		m := &node{inst: isa.Inst{Op: isa.OpMov, LSID: isa.NoLSID}}
		*movs = append(*movs, m)
		m.consumers = fanTree(chunk, movs)
		out = append(out, consRef{n: m, slot: isa.SlotA})
	}
	return out
}

// finish expands fanout, linearizes the dataflow graph into index order,
// assigns load/store IDs, resolves branch labels, and emits the isa.Block.
func (bb *BlockBuilder) finish() (*isa.Block, error) {
	// 1. Fanout expansion.  Mov trees are attached to their producer and
	// spliced into the instruction stream immediately after it, which keeps
	// every target pointing at a higher index.
	for _, rs := range bb.readList {
		rs.consumers = fanTree(rs.consumers, &rs.fanout)
	}
	for _, n := range bb.nodes {
		n.consumers = fanTree(n.consumers, &n.fanout)
	}

	// 2. Linearize.  Read-slot fanout movs come first (reads deliver before
	// any instruction), then each node followed by its fanout tree.
	var final []*node
	for _, rs := range bb.readList {
		final = append(final, rs.fanout...)
	}
	for _, n := range bb.nodes {
		final = append(final, n)
		final = append(final, n.fanout...)
	}
	if len(final) > isa.MaxInsts {
		return nil, fmt.Errorf("%d instructions after fanout expansion exceeds the block limit of %d", len(final), isa.MaxInsts)
	}
	if len(bb.readList) > isa.MaxReads {
		return nil, fmt.Errorf("%d register reads exceeds the limit of %d", len(bb.readList), isa.MaxReads)
	}
	if len(bb.writes) > isa.MaxWrites {
		return nil, fmt.Errorf("%d register writes exceeds the limit of %d", len(bb.writes), isa.MaxWrites)
	}
	for i, n := range final {
		n.index = i
	}

	// 3. Load/store IDs in final (== program) order.
	lsid := 0
	for _, n := range final {
		if n.inst.Op.IsMem() {
			if lsid >= isa.MaxMemOps {
				return nil, fmt.Errorf("more than %d memory operations", isa.MaxMemOps)
			}
			n.inst.LSID = int8(lsid)
			lsid++
		}
	}

	// 4. Resolve consumer references into targets.
	refsToTargets := func(refs []consRef) []isa.Target {
		ts := make([]isa.Target, 0, len(refs))
		for _, r := range refs {
			if r.n == nil {
				ts = append(ts, isa.Target{Kind: isa.TargetWrite, Index: uint8(r.wIdx)})
			} else {
				ts = append(ts, isa.Target{Kind: isa.TargetInst, Index: uint8(r.n.index), Slot: r.slot})
			}
		}
		return ts
	}

	// 5. Resolve branch labels.
	for _, n := range final {
		if n.inst.Op == isa.OpBro {
			if n.label == HaltLabel {
				n.inst.Imm = isa.HaltTarget
				continue
			}
			tgt, ok := bb.b.byName[n.label]
			if !ok {
				return nil, fmt.Errorf("branch to unknown label %q", n.label)
			}
			n.inst.Imm = int64(tgt.id)
		}
	}

	// 6. Emit.
	blk := &isa.Block{ID: bb.id, Name: bb.label}
	for _, rs := range bb.readList {
		blk.Reads = append(blk.Reads, isa.RegRead{Reg: rs.reg, Targets: refsToTargets(rs.consumers)})
	}
	for _, n := range final {
		in := n.inst
		in.Targets = refsToTargets(n.consumers)
		blk.Insts = append(blk.Insts, in)
	}
	for _, reg := range bb.writes {
		blk.Writes = append(blk.Writes, isa.RegWrite{Reg: reg})
	}
	return blk, nil
}
