// Package bitset provides the small fixed-width bit-mask types the
// simulator's selection logic is built on: per-block instruction masks
// (Mask128), per-block memory-op occupancy masks (Mask32), and a wrapped
// power-of-two ring of block slots (Ring).  Pick-next queries resolve with
// math/bits priority-encoder intrinsics (TrailingZeros), which is how
// hardware EDGE schedulers select ready instructions — a CLZ over a ready
// bitmap instead of an associative scan.
//
// The package is deterministic by construction (pure word arithmetic, no
// maps, no time, no goroutines) and is part of the dsre-lint determinism
// audit set.
package bitset

import "math/bits"

// Mask32 is a 32-slot occupancy mask, indexed by LSID (the LSQ's
// per-block memory-operation masks; isa.MaxMemOps = 32).
type Mask32 uint32

// Set sets bit i.
func (m *Mask32) Set(i int) { *m |= 1 << uint(i) }

// Clear clears bit i.
func (m *Mask32) Clear(i int) { *m &^= 1 << uint(i) }

// Test reports bit i.
func (m Mask32) Test(i int) bool { return m&(1<<uint(i)) != 0 }

// Empty reports whether no bit is set.
func (m Mask32) Empty() bool { return m == 0 }

// Count returns the number of set bits.
func (m Mask32) Count() int { return bits.OnesCount32(uint32(m)) }

// Min returns the lowest set bit, or -1 when empty.
func (m Mask32) Min() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Max returns the highest set bit, or -1 when empty.
func (m Mask32) Max() int {
	if m == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(uint32(m))
}

// Below returns the bits strictly below i (the "older than LSID i" mask).
func (m Mask32) Below(i int) Mask32 { return m & (1<<uint(i) - 1) }

// Above returns the bits strictly above i (the "younger than LSID i" mask).
func (m Mask32) Above(i int) Mask32 { return m &^ (1<<uint(i+1) - 1) }

// Mask128 is a 128-slot mask, indexed by instruction index within a block
// (isa.MaxInsts = 128).
type Mask128 [2]uint64

// Set sets bit i.
func (m *Mask128) Set(i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (m *Mask128) Clear(i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports bit i.
func (m *Mask128) Test(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// Empty reports whether no bit is set.
func (m *Mask128) Empty() bool { return m[0]|m[1] == 0 }

// Count returns the number of set bits.
func (m *Mask128) Count() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1])
}

// Min returns the lowest set bit, or -1 when empty: the priority-encoder
// step of bitmap pick-next (oldest instruction index first).
func (m *Mask128) Min() int {
	if m[0] != 0 {
		return bits.TrailingZeros64(m[0])
	}
	if m[1] != 0 {
		return 64 + bits.TrailingZeros64(m[1])
	}
	return -1
}

// Reset clears every bit.
func (m *Mask128) Reset() { m[0], m[1] = 0, 0 }

// Ring is a fixed-capacity bitset over a power-of-two ring of slots,
// answering "first set slot at or after i, wrapping around" — the
// oldest-block-first query over a frame ring whose base advances as blocks
// commit.  Capacity is rounded up to a power of two and is at least 64 so
// the single-word fast path (a rotate plus TrailingZeros) covers the
// common configurations.
type Ring struct {
	words []uint64
	size  int
}

// NewRing returns a ring with capacity for at least n slots.
func NewRing(n int) Ring {
	size := 64
	for size < n {
		size <<= 1
	}
	return Ring{words: make([]uint64, size>>6), size: size}
}

// Size returns the ring's capacity (a power of two; index with i & (Size()-1)).
func (r *Ring) Size() int { return r.size }

// Set sets slot i.
func (r *Ring) Set(i int) { r.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears slot i.
func (r *Ring) Clear(i int) { r.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports slot i.
func (r *Ring) Test(i int) bool { return r.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Empty reports whether no slot is set.
func (r *Ring) Empty() bool {
	for _, w := range r.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set slots.
func (r *Ring) Count() int {
	n := 0
	for _, w := range r.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// FirstFrom returns the first set slot in the cyclic order start, start+1,
// ..., start-1 (mod Size), or -1 when the ring is empty.
func (r *Ring) FirstFrom(start int) int {
	if len(r.words) == 1 {
		w := r.words[0]
		if w == 0 {
			return -1
		}
		// Rotate so bit `start` lands at bit 0; the trailing-zero count is
		// then the cyclic distance to the first set slot.
		rot := bits.RotateLeft64(w, -start)
		return (start + bits.TrailingZeros64(rot)) & (r.size - 1)
	}
	wi, bi := start>>6, uint(start)&63
	if w := r.words[wi] >> bi << bi; w != 0 {
		return wi<<6 + bits.TrailingZeros64(w)
	}
	for k := 1; k <= len(r.words); k++ {
		j := (wi + k) & (len(r.words) - 1)
		if w := r.words[j]; w != 0 {
			s := j<<6 + bits.TrailingZeros64(w)
			if j == wi {
				// Wrapped all the way back to the start word: only bits
				// strictly below the start position remain eligible.
				if uint(bits.TrailingZeros64(w)) >= bi {
					return -1
				}
			}
			return s
		}
	}
	return -1
}
