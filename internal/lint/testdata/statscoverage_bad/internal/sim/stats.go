package sim

// Stats has one counter per failure mode.
type Stats struct {
	Cycles  int64
	debug   int64 // want: unexported, invisible to the report
	Scratch int64 `json:"-"` // want: tagged out of the report
	Dead    int64 // want: nothing ever writes it
}

type Machine struct{ stats Stats }

func (m *Machine) Step() {
	m.stats.Cycles++
	m.stats.debug++
	m.stats.Scratch++
}
