// Command dsre-lint runs the repository's static-analysis suite (package
// internal/lint): determinism, confighash, statscoverage, exhaustive,
// lockcheck, atomiccheck, ctxcheck and schemadrift.
//
// Usage:
//
//	dsre-lint [-C dir] [-json] [-fix-report] [./...]
//	dsre-lint [-C dir] -write-schemas [-schemas-dir dir]
//
// -write-schemas regenerates the wire-schema goldens that the schemadrift
// analyzer checks (by default under internal/lint/schemas/), removing
// goldens whose packages no longer declare schemas.  -fix-report prints a
// one-screen triage table (diagnostics per analyzer per package) instead of
// the raw diagnostic stream.
//
// Exit status: 0 when the tree is clean, 1 when diagnostics were found (or
// a configured anchor is missing, which would silently disable a check),
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/lint"
)

// Schema identifies the -json wire format.
const Schema = "dsre-lint/v1"

type jsonOutput struct {
	Schema  string      `json:"schema"`
	Diags   []lint.Diag `json:"diagnostics"`
	Missing []string    `json:"missing_anchors,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsre-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to lint")
	jsonOut := fs.Bool("json", false, "emit machine-readable "+Schema+" JSON")
	fixReport := fs.Bool("fix-report", false, "print a per-analyzer/per-package triage table instead of raw diagnostics")
	writeSchemas := fs.Bool("write-schemas", false, "regenerate the wire-schema goldens and exit")
	schemasDir := fs.String("schemas-dir", "", "golden output directory for -write-schemas (default <module>/"+lint.DefaultConfig().SchemaDir+")")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dsre-lint [-C dir] [-json] [-fix-report] [./...]\n")
		fmt.Fprintf(stderr, "       dsre-lint [-C dir] -write-schemas [-schemas-dir dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		// The suite always audits the whole module; only whole-module
		// patterns are meaningful.
		if pat != "./..." && pat != "." && pat != "all" {
			fmt.Fprintf(stderr, "dsre-lint: unsupported pattern %q (the suite lints the whole module; use ./...)\n", pat)
			return 2
		}
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	if *writeSchemas {
		out := *schemasDir
		if out == "" {
			out = filepath.Join(root, filepath.FromSlash(lint.DefaultConfig().SchemaDir))
		}
		return runWriteSchemas(mod, out, stdout, stderr)
	}
	res := lint.Run(mod, lint.DefaultConfig())
	if *fixReport {
		printFixReport(stdout, res)
		if len(res.Diags) > 0 || len(res.Missing) > 0 {
			return 1
		}
		return 0
	}
	if *jsonOut {
		diags := res.Diags
		if diags == nil {
			diags = []lint.Diag{} // a clean tree serializes as [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOutput{Schema: Schema, Diags: diags, Missing: res.Missing}); err != nil {
			fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d)
		}
		for _, m := range res.Missing {
			fmt.Fprintf(stderr, "dsre-lint: missing anchor: %s (its checks were skipped)\n", m)
		}
	}
	if len(res.Diags) > 0 || len(res.Missing) > 0 {
		return 1
	}
	return 0
}

// runWriteSchemas regenerates the schema goldens in dir, deleting goldens
// whose schema packages are gone.
func runWriteSchemas(mod *lint.Module, dir string, stdout, stderr io.Writer) int {
	schemas, err := lint.Schemas(mod)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	names := make([]string, 0, len(schemas))
	for name := range schemas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), schemas[name], 0o644); err != nil {
			fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "dsre-lint: wrote %s\n", name)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		if _, keep := schemas[e.Name()]; !keep {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "dsre-lint: removed stale %s\n", e.Name())
		}
	}
	return 0
}

// printFixReport renders the one-screen triage table.
func printFixReport(stdout io.Writer, res *lint.Result) {
	if len(res.Diags) == 0 && len(res.Missing) == 0 {
		fmt.Fprintln(stdout, "dsre-lint: clean (0 diagnostics)")
		return
	}
	rows := lint.Summarize(res.Diags)
	pkgs := map[string]bool{}
	for _, r := range rows {
		pkgs[r.Package] = true
	}
	fmt.Fprintf(stdout, "dsre-lint: %d diagnostics in %d packages\n\n", len(res.Diags), len(pkgs))
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  ANALYZER\tPACKAGE\tCOUNT\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %s\t%s\t%d\n", r.Analyzer, r.Package, r.Count)
	}
	tw.Flush()
	for _, m := range res.Missing {
		fmt.Fprintf(stdout, "\n  missing anchor: %s (its checks were skipped)", m)
	}
	if len(res.Missing) > 0 {
		fmt.Fprintln(stdout)
	}
	fmt.Fprintln(stdout, "\nrun dsre-lint without -fix-report for the full diagnostic stream")
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
