package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

const exhaustiveName = "exhaustive"

// enumSet is one audited enum: the named type plus its declared members,
// grouped by constant value (two names with one value are one member).
type enumSet struct {
	display string // "relpkg.TypeName" as configured
	named   *types.Named
	byValue map[string][]string // exact constant value -> member names
}

// exhaustive requires every switch over a configured enum type to either
// cover all declared members or carry an explicit default.  The protocol
// dispatch switches (message kinds, opcodes, recovery schemes) silently
// drop work when a new member is added but a switch is not extended.
func exhaustive(p *pass) {
	var enums []*enumSet
	byType := map[*types.Named]*enumSet{}
	for _, entry := range p.cfg.EnumTypes {
		dot := strings.LastIndex(entry, ".")
		if dot < 0 {
			p.missingAnchor("malformed enum entry " + entry)
			continue
		}
		rel, name := entry[:dot], entry[dot+1:]
		pkg := p.mod.Lookup(rel)
		if pkg == nil {
			p.missingAnchor("package " + rel)
			continue
		}
		named := lookupNamed(pkg, name)
		if named == nil {
			p.missingAnchor(entry)
			continue
		}
		es := &enumSet{display: entry, named: named, byValue: map[string][]string{}}
		collectMembers(pkg, es)
		if len(es.byValue) == 0 {
			p.missingAnchor(entry + " (no constant members)")
			continue
		}
		enums = append(enums, es)
		byType[named] = es
	}
	if len(enums) == 0 {
		return
	}
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := p.mod.Info.Types[sw.Tag]
				if !ok {
					return true
				}
				named, ok := types.Unalias(tv.Type).(*types.Named)
				if !ok {
					return true
				}
				if es := byType[named]; es != nil {
					p.checkSwitch(sw, es)
				}
				return true
			})
		}
	}
}

// collectMembers gathers the package-scope constants of the enum's exact
// type.  Sentinel bounds (numX/NumX/maxX/MaxX/minX/MinX) delimit the set
// rather than belong to it, so they are excluded.
func collectMembers(pkg *Package, es *enumSet) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || sentinelName(name) {
			continue
		}
		if !types.Identical(types.Unalias(c.Type()), es.named) {
			continue
		}
		key := c.Val().ExactString()
		es.byValue[key] = append(es.byValue[key], name)
	}
}

func sentinelName(name string) bool {
	for _, prefix := range []string{"num", "Num", "max", "Max", "min", "Min"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// checkSwitch reports the members a switch misses.  A default clause opts
// the switch out (it states what happens to unlisted members); a
// non-constant case expression makes coverage undecidable, so it opts out
// too.
func (p *pass) checkSwitch(sw *ast.SwitchStmt, es *enumSet) {
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		if clause.List == nil {
			return // explicit default
		}
		for _, e := range clause.List {
			tv, ok := p.mod.Info.Types[e]
			if !ok || tv.Value == nil {
				return // dynamic case: coverage is a runtime property here
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for val, names := range es.byValue { //lint:ordered — missing is sorted before reporting
		if !covered[val] {
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.reportf(exhaustiveName, sw.Pos(),
		"switch over %s misses %s — add the cases or an explicit default",
		es.display, strings.Join(missing, ", "))
}
