package lsq

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

func benchQueue(b *testing.B, policy core.IssuePolicy) (*Queue, *mem.Memory) {
	b.Helper()
	m := mem.New()
	h, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		b.Fatal(err)
	}
	return New(Config{Policy: policy}, m, h, &core.TagSource{}, nil, nil), m
}

// BenchmarkForwardingScan measures byte-wise reconstruction against a
// full window (8 blocks × 32 memory ops).
func BenchmarkForwardingScan(b *testing.B) {
	q, _ := benchQueue(b, core.IssueAggressive)
	ops := make([]OpInfo, 32)
	for i := range ops {
		ops[i] = OpInfo{LSID: int8(i), IsStore: i%2 == 0, Size: 8}
	}
	for seq := int64(0); seq < 8; seq++ {
		q.RegisterBlock(seq, ops)
		for i := 0; i < 32; i += 2 {
			q.StoreUpdate(Key{seq, int8(i)}, uint64(0x1000+8*((seq*16+int64(i))%64)), seq, 0, false, false)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.reconstruct(Key{7, 31}, 0x1000, 8)
	}
}

// BenchmarkViolationCheck measures the younger-load re-check a store
// update performs.
func BenchmarkViolationCheck(b *testing.B) {
	q, _ := benchQueue(b, core.IssueAggressive)
	ops := make([]OpInfo, 32)
	for i := range ops {
		ops[i] = OpInfo{LSID: int8(i), IsStore: i == 0, Size: 8}
	}
	for seq := int64(0); seq < 8; seq++ {
		q.RegisterBlock(seq, ops)
		for i := 1; i < 32; i++ {
			q.LoadTry(0, Key{seq, int8(i)}, uint64(0x1000+8*int64(i%8)), 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternating value prevents silent-store short-circuits from
		// making the measurement trivial.
		q.StoreUpdate(Key{0, 0}, 0x1000, int64(i&1), 0, false, false)
	}
}

// BenchmarkCertifyScan measures a full certification sweep that yields
// nothing: seven blocks of address-final stores followed by a block of
// candidate loads parked behind one address-pending store.  Every iteration
// walks the whole candidate list and, per load, the mask-first older-store
// filter across the full window before failing at the youngest block — the
// steady-state cost of a commit wave that has not yet caught up.
func BenchmarkCertifyScan(b *testing.B) {
	q, _ := benchQueue(b, core.IssueAggressive)
	stores := make([]OpInfo, 32)
	for i := range stores {
		stores[i] = OpInfo{LSID: int8(i), IsStore: true, Size: 8}
	}
	for seq := int64(0); seq < 7; seq++ {
		q.RegisterBlock(seq, stores)
		for i := 0; i < 32; i++ {
			// Address committed, data pending: stays an alias candidate.
			q.StoreUpdate(Key{seq, int8(i)}, uint64(0x1000+8*(seq*32+int64(i))), 1, 0, true, false)
		}
	}
	mixed := make([]OpInfo, 32)
	for i := range mixed {
		mixed[i] = OpInfo{LSID: int8(i), IsStore: i == 0, Size: 8}
	}
	q.RegisterBlock(7, mixed)
	q.StoreUpdate(Key{7, 0}, 0x8000, 1, 0, false, false) // address never final
	for i := 1; i < 32; i++ {
		k := Key{7, int8(i)}
		q.LoadTry(0, k, uint64(0x9000+8*int64(i)), 0)
		q.LoadInputsCommitted(k)
	}
	buf := make([]CertifiedLoad, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.certDirty = true // as a store commit would
		buf = q.TakeCertifiable(buf[:0])
		if len(buf) != 0 {
			b.Fatal("no load should certify past the pending store")
		}
	}
}

// BenchmarkAliasSearch measures one older-store safety walk in the case
// that certifies: a full window of address-final, data-pending stores, so
// every block's occupancy mask survives the word-level filters and each
// store must be proven non-overlapping address-by-address.
func BenchmarkAliasSearch(b *testing.B) {
	q, _ := benchQueue(b, core.IssueAggressive)
	ops := make([]OpInfo, 32)
	for i := range ops {
		ops[i] = OpInfo{LSID: int8(i), IsStore: i < 31, Size: 8}
	}
	for seq := int64(0); seq < 8; seq++ {
		q.RegisterBlock(seq, ops)
		for i := 0; i < 31; i++ {
			q.StoreUpdate(Key{seq, int8(i)}, uint64(0x1000+8*(seq*32+int64(i))), 1, 0, true, false)
		}
	}
	load := Key{7, 31}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.olderStoresSafe(load, 0x9000, 8) {
			b.Fatal("disjoint load should be safe")
		}
	}
}

// BenchmarkLoadIssue measures the end-to-end load path (policy check,
// reconstruction, cache timing).
func BenchmarkLoadIssue(b *testing.B) {
	q, m := benchQueue(b, core.IssueAggressive)
	m.Write(0x2000, 7, 8)
	ops := make([]OpInfo, 1)
	ops[0] = OpInfo{LSID: 0, Size: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := int64(i)
		q.RegisterBlock(seq, ops)
		q.LoadTry(int64(i), Key{seq, 0}, 0x2000, 0)
		q.Drain(seq)
	}
}
