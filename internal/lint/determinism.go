package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const determinismName = "determinism"

// bannedTimeFuncs are wall-clock (or scheduler-coupled) time functions: a
// simulator result must be a function of Config + seed, never of when or
// where it ran.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// bannedRandFuncs are the math/rand (and v2) package-level functions backed
// by the shared, non-deterministically seeded global source.  Explicitly
// seeded generators (rand.New(rand.NewSource(seed))) remain available.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// determinism forbids wall-clock reads, unseeded math/rand, goroutine
// spawns and order-dependent map iteration in the simulator packages.
// A `//lint:ordered` comment on (or immediately above) a range statement
// asserts the iteration is order-independent or explicitly normalised.
func determinism(p *pass) {
	for _, rel := range p.cfg.DeterminismPkgs {
		pkg := p.mod.Lookup(rel)
		if pkg == nil {
			// Recorded so a package rename cannot silently disable the
			// audit on the real tree; fixture modules tolerate the gap.
			p.missingAnchor("package " + rel)
			continue
		}
		for _, f := range pkg.Files {
			ordered := p.annotationsFor(f, "ordered")
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					p.reportf(determinismName, n.Pos(),
						"goroutine spawn in simulator package %s — concurrency makes cycle results scheduling-dependent", rel)
				case *ast.SelectorExpr:
					p.checkBannedSelector(n)
				case *ast.RangeStmt:
					p.checkMapRange(n, ordered)
				}
				return true
			})
		}
	}
}

// checkBannedSelector flags pkg.Func selections of banned time and
// math/rand functions (used as calls or as values).
func (p *pass) checkBannedSelector(sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := p.mod.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if bannedTimeFuncs[sel.Sel.Name] {
			p.reportf(determinismName, sel.Pos(),
				"call to time.%s — simulator state must be a function of Config + seed, not wall-clock time", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if bannedRandFuncs[sel.Sel.Name] {
			p.reportf(determinismName, sel.Pos(),
				"rand.%s uses the global unseeded source — build an explicit rand.New(rand.NewSource(seed)) instead", sel.Sel.Name)
		}
	}
}

// checkMapRange flags `range` over a map whose loop body has effects that
// depend on iteration order (Go randomises map order per run).
func (p *pass) checkMapRange(rs *ast.RangeStmt, ordered []*annotation) {
	tv, ok := p.mod.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	line := p.mod.Fset.Position(rs.Pos()).Line
	if suppressed(ordered, line) {
		return
	}
	chk := &mapRangeChecker{pass: p, rs: rs, locals: map[types.Object]bool{}}
	if keyObj := chk.rangeVarObj(rs.Key); keyObj != nil {
		chk.keyObj = keyObj
		chk.locals[keyObj] = true
	}
	if valObj := chk.rangeVarObj(rs.Value); valObj != nil {
		chk.locals[valObj] = true
	}
	if reason := chk.checkStmt(rs.Body); reason != "" {
		p.reportf(determinismName, rs.Pos(),
			"iteration over map %s with order-dependent effects (%s) — sort the keys, or annotate //lint:ordered with a justification",
			types.ExprString(rs.X), reason)
	}
}

// mapRangeChecker conservatively classifies a map-range body: only
// provably order-independent statement forms are allowed.
type mapRangeChecker struct {
	pass   *pass
	rs     *ast.RangeStmt
	keyObj types.Object
	locals map[types.Object]bool
}

func (c *mapRangeChecker) rangeVarObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pass.mod.Info.Defs[id]
}

// checkStmt returns "" when the statement is order-independent, else a
// short reason.
func (c *mapRangeChecker) checkStmt(s ast.Stmt) string {
	switch s := s.(type) {
	case nil:
		return ""
	case *ast.BlockStmt:
		for _, st := range s.List {
			if r := c.checkStmt(st); r != "" {
				return r
			}
		}
		return ""
	case *ast.AssignStmt:
		return c.checkAssign(s)
	case *ast.IncDecStmt:
		// Increments/decrements commute regardless of the target.
		return c.exprSafe(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR && gd.Tok != token.CONST {
			return "declaration"
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if obj := c.pass.mod.Info.Defs[name]; obj != nil {
					c.locals[obj] = true
				}
			}
			for _, v := range vs.Values {
				if r := c.exprSafe(v); r != "" {
					return r
				}
			}
		}
		return ""
	case *ast.IfStmt:
		if r := c.checkStmt(s.Init); r != "" {
			return r
		}
		if r := c.exprSafe(s.Cond); r != "" {
			return r
		}
		if r := c.checkStmt(s.Body); r != "" {
			return r
		}
		return c.checkStmt(s.Else)
	case *ast.ForStmt:
		if r := c.checkStmt(s.Init); r != "" {
			return r
		}
		if s.Cond != nil {
			if r := c.exprSafe(s.Cond); r != "" {
				return r
			}
		}
		if r := c.checkStmt(s.Post); r != "" {
			return r
		}
		return c.checkStmt(s.Body)
	case *ast.RangeStmt:
		if r := c.exprSafe(s.X); r != "" {
			return r
		}
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok {
				if obj := c.pass.mod.Info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return c.checkStmt(s.Body)
	case *ast.SwitchStmt:
		if r := c.checkStmt(s.Init); r != "" {
			return r
		}
		if s.Tag != nil {
			if r := c.exprSafe(s.Tag); r != "" {
				return r
			}
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				if r := c.exprSafe(e); r != "" {
					return r
				}
			}
			for _, st := range clause.Body {
				if r := c.checkStmt(st); r != "" {
					return r
				}
			}
		}
		return ""
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "order-dependent early exit (" + s.Tok.String() + ")"
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && c.isRangedMapDelete(call) {
			return ""
		}
		return c.exprSafe(s.X)
	case *ast.ReturnStmt:
		return "return from inside the iteration"
	default:
		return "statement with order-dependent effects"
	}
}

// checkAssign allows per-key writes, writes to loop locals, and commutative
// integer accumulation; everything else escapes in iteration order.
func (c *mapRangeChecker) checkAssign(s *ast.AssignStmt) string {
	for _, rhs := range s.Rhs {
		if r := c.exprSafe(rhs); r != "" {
			return r
		}
	}
	switch s.Tok {
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.pass.mod.Info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return ""
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		// Commutative and associative over integers (floats are not: their
		// rounding makes accumulation order-visible).
		for _, lhs := range s.Lhs {
			if !c.isIntegerOrBool(lhs) {
				return "non-integer accumulation"
			}
			if r := c.exprSafe(lhs); r != "" {
				return r
			}
		}
		return ""
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if r := c.checkPlainAssignTarget(lhs); r != "" {
				return r
			}
		}
		return ""
	default:
		return "accumulation with order-dependent operator " + s.Tok.String()
	}
}

func (c *mapRangeChecker) checkPlainAssignTarget(lhs ast.Expr) string {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return ""
		}
		if obj := c.pass.mod.Info.Uses[lhs]; obj != nil && c.locals[obj] {
			return ""
		}
		return "assignment to " + lhs.Name + " declared outside the loop"
	case *ast.IndexExpr:
		// Writing element [k] for the range key k touches a distinct slot
		// per iteration: order-independent.
		if id, ok := lhs.Index.(*ast.Ident); ok && c.keyObj != nil &&
			c.pass.mod.Info.Uses[id] == c.keyObj {
			return c.exprSafe(lhs.X)
		}
		return "indexed write not keyed by the range key"
	default:
		return "assignment to " + types.ExprString(lhs)
	}
}

// isRangedMapDelete recognises delete(m, k) on the ranged map with the
// range key, which Go defines as safe and is order-independent.
func (c *mapRangeChecker) isRangedMapDelete(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if b, ok := c.pass.mod.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	if types.ExprString(call.Args[0]) != types.ExprString(c.rs.X) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && c.keyObj != nil && c.pass.mod.Info.Uses[arg] == c.keyObj
}

func (c *mapRangeChecker) isIntegerOrBool(e ast.Expr) bool {
	tv, ok := c.pass.mod.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// exprSafe rejects expressions whose evaluation could observe or leak
// iteration order: any function call (conversions and len/cap/min/max are
// fine) and channel operations.
func (c *mapRangeChecker) exprSafe(e ast.Expr) string {
	if e == nil {
		return ""
	}
	var reason string
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := c.pass.mod.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := c.pass.mod.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max", "delete":
						return true
					}
				}
			}
			reason = "call to " + types.ExprString(n.Fun)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = "channel receive"
				return false
			}
		}
		return true
	})
	return reason
}
