package predictor

// StrideValue is a stride-based load-value predictor: per static load it
// tracks the last value and the last observed stride, predicting
// last+stride once the stride has repeated (2-bit confidence).  Classic
// last-value behaviour falls out when the stride locks at zero.
//
// Value prediction is the "other application" the DSRE paper positions its
// protocol for: predicting a load's value hides the entire load-to-use
// latency, and mis-predictions are repaired by the same selective
// re-execution waves as memory-ordering violations.
type StrideValue struct {
	table map[PC]*svEntry

	// Stats.
	Lookups    int64
	Predicted  int64 // confident predictions issued
	Trained    int64
}

type svEntry struct {
	last   int64
	stride int64
	conf   int8
	primed bool
}

// confidence thresholds: predict at >= predictAt, saturate at max.
const (
	svPredictAt = 2
	svConfMax   = 3
)

// NewStrideValue returns an empty predictor.
func NewStrideValue() *StrideValue {
	return &StrideValue{table: make(map[PC]*svEntry)}
}

// Predict returns the predicted value for a load, and whether the predictor
// is confident enough to speculate.
func (p *StrideValue) Predict(pc PC) (int64, bool) {
	p.Lookups++
	e := p.table[pc]
	if e == nil || !e.primed || e.conf < svPredictAt {
		return 0, false
	}
	p.Predicted++
	return e.last + e.stride, true
}

// Train records a load's final (architecturally certified) value.
func (p *StrideValue) Train(pc PC, v int64) {
	p.Trained++
	e := p.table[pc]
	if e == nil {
		e = &svEntry{}
		p.table[pc] = e
	}
	if !e.primed {
		e.last, e.primed = v, true
		return
	}
	s := v - e.last
	if s == e.stride {
		if e.conf < svConfMax {
			e.conf++
		}
	} else {
		e.stride = s
		if e.conf > 0 {
			e.conf--
		} else {
			e.conf = 0
		}
	}
	e.last = v
}
